// Package sharedsort implements Section III of the paper: shared merge-sort
// across bid phrases. Each non-leaf node is an on-demand merge operator with
// a left and a right register; it emits the larger register upstream and
// caches everything it has emitted, so when the node is shared between the
// merge-sort trees of several phrases, each prefix of its output is sorted
// at most once per round regardless of how many phrases consume it.
//
// The plan builder (plan.go) follows the paper's bottom-up greedy heuristic:
// repeatedly merge the two nodes u, v with Q_u ∩ Q_v ≠ ∅, I_u ∩ I_v = ∅ and
// |I_u| = |I_v| that maximize the expected savings
// |I_w| · E[#queries in Q_w occurring beyond the first].
package sharedsort

import (
	"fmt"

	"sharedwd/internal/bitset"
)

// Item is one element of a merge-sort stream: an advertiser and its current
// bid. Streams are ordered by descending bid, ties broken by ascending
// advertiser, so every run is deterministic.
type Item struct {
	Advertiser int
	Bid        float64
}

// less orders items descending by bid, ascending by advertiser on ties.
func (a Item) less(b Item) bool {
	if a.Bid != b.Bid {
		return a.Bid > b.Bid
	}
	return a.Advertiser < b.Advertiser
}

// Node is an on-demand merge operator (or an advertiser leaf). Consumers
// address its output by index via Get; the node computes lazily and caches
// emitted items, which is what makes sharing across phrase trees free.
type Node struct {
	ID int
	// Advertisers is I_v: the advertisers below this node.
	Advertisers bitset.Set
	// Phrases is Q_v: the phrases whose merge-sort tree uses this node.
	Phrases bitset.Set

	left, right *Node
	// Registers: a pulled-but-unemitted item from each child.
	leftReg, rightReg   *Item
	leftNext, rightNext int // cursor into each child's emitted cache

	leaf     bool
	leafItem Item
	leafDone bool

	emitted   []Item
	exhausted bool

	// Pulls counts produce invocations this round — the operator-invocation
	// cost the paper's full-sort cost model bounds by |I_v|.
	Pulls int
}

// Get returns the i-th largest item of this node's stream (0-based),
// producing lazily as needed. ok=false means the stream has fewer than i+1
// items.
func (n *Node) Get(i int) (Item, bool) {
	for len(n.emitted) <= i && !n.exhausted {
		n.produce()
	}
	if i < len(n.emitted) {
		return n.emitted[i], true
	}
	return Item{}, false
}

// Emitted returns how many items the node has produced so far this round.
func (n *Node) Emitted() int { return len(n.emitted) }

// Size returns |I_v|.
func (n *Node) Size() int { return n.Advertisers.Count() }

// produce advances the merge by one output item (or discovers exhaustion).
func (n *Node) produce() {
	n.Pulls++
	if n.leaf {
		if n.leafDone {
			n.exhausted = true
			return
		}
		n.leafDone = true
		n.emitted = append(n.emitted, n.leafItem)
		return
	}
	// Fill empty registers from the children's cached streams.
	if n.leftReg == nil {
		if it, ok := n.left.Get(n.leftNext); ok {
			n.leftNext++
			n.leftReg = &it
		}
	}
	if n.rightReg == nil {
		if it, ok := n.right.Get(n.rightNext); ok {
			n.rightNext++
			n.rightReg = &it
		}
	}
	switch {
	case n.leftReg == nil && n.rightReg == nil:
		n.exhausted = true
	case n.rightReg == nil || (n.leftReg != nil && n.leftReg.less(*n.rightReg)):
		n.emitted = append(n.emitted, *n.leftReg)
		n.leftReg = nil
	default:
		n.emitted = append(n.emitted, *n.rightReg)
		n.rightReg = nil
	}
}

// reset clears the node's per-round state (registers, cache, counters).
func (n *Node) reset() {
	n.leftReg, n.rightReg = nil, nil
	n.leftNext, n.rightNext = 0, 0
	n.leafDone = false
	n.emitted = n.emitted[:0]
	n.exhausted = false
	n.Pulls = 0
}

func (n *Node) String() string {
	kind := "merge"
	if n.leaf {
		kind = "leaf"
	}
	return fmt.Sprintf("%s#%d I=%v Q=%v", kind, n.ID, n.Advertisers, n.Phrases)
}
