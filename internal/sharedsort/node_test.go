package sharedsort

import (
	"testing"

	"sharedwd/internal/bitset"
)

// handBuild constructs a tiny two-level merge tree by hand:
//
//	  w
//	 / \
//	u   v     u = merge(leaf0, leaf1), v = merge(leaf2, leaf3)
func handBuild() (leaves [4]*Node, u, v, w *Node) {
	mk := func(id, adv int) *Node {
		return &Node{
			ID:          id,
			Advertisers: bitset.FromIndices(4, adv),
			Phrases:     bitset.New(1),
			leaf:        true,
			leafItem:    Item{Advertiser: adv},
		}
	}
	for i := range leaves {
		leaves[i] = mk(i, i)
	}
	u = &Node{ID: 4, Advertisers: bitset.FromIndices(4, 0, 1), Phrases: bitset.New(1), left: leaves[0], right: leaves[1]}
	v = &Node{ID: 5, Advertisers: bitset.FromIndices(4, 2, 3), Phrases: bitset.New(1), left: leaves[2], right: leaves[3]}
	w = &Node{ID: 6, Advertisers: bitset.FromIndices(4, 0, 1, 2, 3), Phrases: bitset.New(1), left: u, right: v}
	return
}

func setBids(leaves [4]*Node, bids [4]float64) {
	for i, l := range leaves {
		l.reset()
		l.leafItem.Bid = bids[i]
	}
}

func TestNodeLazyRegisters(t *testing.T) {
	leaves, u, v, w := handBuild()
	setBids(leaves, [4]float64{3, 7, 5, 1})
	u.reset()
	v.reset()
	w.reset()

	// Pull just the maximum: w fills both registers (one pull into each
	// child), emits the larger; the children each produced exactly one
	// item, not their full streams.
	it, ok := w.Get(0)
	if !ok || it.Advertiser != 1 || it.Bid != 7 {
		t.Fatalf("top = %+v %v", it, ok)
	}
	if u.Emitted() != 1 || v.Emitted() != 1 {
		t.Fatalf("children emitted %d/%d, want 1/1 (lazy)", u.Emitted(), v.Emitted())
	}
	// Next item (5 from v): w refills its emptied left register — one more
	// pull into u — compares 3 < 5, and emits from the held right register.
	// v needs no new production.
	it, _ = w.Get(1)
	if it.Advertiser != 2 || it.Bid != 5 {
		t.Fatalf("second = %+v", it)
	}
	if u.Emitted() != 2 || v.Emitted() != 1 {
		t.Fatalf("children emitted %d/%d, want 2/1 (register discipline)", u.Emitted(), v.Emitted())
	}
}

func TestNodeFullDrainAndExhaustion(t *testing.T) {
	leaves, u, v, w := handBuild()
	setBids(leaves, [4]float64{3, 7, 5, 1})
	u.reset()
	v.reset()
	w.reset()
	var got []int
	for i := 0; ; i++ {
		it, ok := w.Get(i)
		if !ok {
			break
		}
		got = append(got, it.Advertiser)
	}
	want := []int{1, 2, 0, 3}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
	// Exhausted stream answers consistently on re-query.
	if _, ok := w.Get(10); ok {
		t.Fatal("Get past exhaustion should report !ok")
	}
	if it, ok := w.Get(2); !ok || it.Advertiser != 0 {
		t.Fatal("cached items must remain addressable after exhaustion")
	}
}

func TestNodeCacheSharedBetweenConsumers(t *testing.T) {
	leaves, u, v, w := handBuild()
	setBids(leaves, [4]float64{3, 7, 5, 1})
	u.reset()
	v.reset()
	w.reset()
	// Consumer A drains fully; consumer B then replays from the cache
	// without any further production work.
	for i := 0; ; i++ {
		if _, ok := w.Get(i); !ok {
			break
		}
	}
	pullsAfterA := w.Pulls + u.Pulls + v.Pulls
	for i := 0; i < 4; i++ {
		if _, ok := w.Get(i); !ok {
			t.Fatal("cache replay failed")
		}
	}
	if got := w.Pulls + u.Pulls + v.Pulls; got != pullsAfterA {
		t.Fatalf("replay performed %d extra pulls", got-pullsAfterA)
	}
}

func TestNodeResetBetweenRounds(t *testing.T) {
	leaves, u, v, w := handBuild()
	setBids(leaves, [4]float64{3, 7, 5, 1})
	u.reset()
	v.reset()
	w.reset()
	w.Get(0)
	// New round with different bids: resets clear registers and caches.
	setBids(leaves, [4]float64{9, 1, 2, 8})
	u.reset()
	v.reset()
	w.reset()
	it, ok := w.Get(0)
	if !ok || it.Advertiser != 0 || it.Bid != 9 {
		t.Fatalf("after reset top = %+v", it)
	}
	if w.Pulls != 1 {
		t.Fatalf("Pulls = %d after reset+one pull", w.Pulls)
	}
}

func TestTieBreakDeterministic(t *testing.T) {
	leaves, u, v, w := handBuild()
	setBids(leaves, [4]float64{5, 5, 5, 5})
	u.reset()
	v.reset()
	w.reset()
	var got []int
	for i := 0; i < 4; i++ {
		it, _ := w.Get(i)
		got = append(got, it.Advertiser)
	}
	for i, adv := range []int{0, 1, 2, 3} {
		if got[i] != adv {
			t.Fatalf("tie order = %v, want ascending advertiser", got)
		}
	}
}

func TestNodeString(t *testing.T) {
	leaves, _, _, w := handBuild()
	if s := leaves[0].String(); s == "" || s[:4] != "leaf" {
		t.Fatalf("leaf String = %q", s)
	}
	if s := w.String(); s[:5] != "merge" {
		t.Fatalf("merge String = %q", s)
	}
}
