package sharedsort

import (
	"fmt"
	"sort"

	"sharedwd/internal/bitset"
)

// Options configures plan construction.
type Options struct {
	// DisableSharing skips the greedy sharing stage entirely, yielding one
	// private merge-sort tree per phrase — the unshared baseline.
	DisableSharing bool
}

// Plan is a shared merge-sort plan: a forest of on-demand merge operators
// with one root per phrase. Between rounds call BeginRound to install the
// current bids; during a round obtain per-phrase sorted streams with Stream.
type Plan struct {
	NumAdvertisers int
	NumPhrases     int
	Nodes          []*Node // leaves then merge nodes, in creation order
	Roots          []*Node // per phrase; nil if no advertiser is interested
	// SharedOperators counts merge operators created by the greedy sharing
	// stage (used by ≥ 2 phrases when created).
	SharedOperators int
	rates           []float64
	// usedBy[nodeID] = set of phrases whose tree contains the node.
	usedBy []bitset.Set
}

// Build constructs a shared merge-sort plan. interests[q] is the advertiser
// set of phrase q (all with capacity numAdvertisers); rates[q] is phrase q's
// search rate in [0,1].
func Build(numAdvertisers int, interests []bitset.Set, rates []float64, opts Options) (*Plan, error) {
	if len(interests) != len(rates) {
		return nil, fmt.Errorf("sharedsort: %d interest sets but %d rates", len(interests), len(rates))
	}
	numPhrases := len(interests)
	for q, in := range interests {
		if in.Cap() != numAdvertisers {
			return nil, fmt.Errorf("sharedsort: phrase %d capacity %d, want %d", q, in.Cap(), numAdvertisers)
		}
		if rates[q] < 0 || rates[q] > 1 {
			return nil, fmt.Errorf("sharedsort: phrase %d rate %v outside [0,1]", q, rates[q])
		}
	}
	p := &Plan{
		NumAdvertisers: numAdvertisers,
		NumPhrases:     numPhrases,
		Roots:          make([]*Node, numPhrases),
		rates:          append([]float64(nil), rates...),
	}

	// Leaves for advertisers interested in at least one phrase; tops[q] is
	// phrase q's current merge frontier.
	tops := make([][]*Node, numPhrases)
	for a := 0; a < numAdvertisers; a++ {
		phrases := bitset.New(numPhrases)
		for q, in := range interests {
			if in.Contains(a) {
				phrases.Add(q)
			}
		}
		if phrases.IsEmpty() {
			continue
		}
		n := &Node{
			ID:          len(p.Nodes),
			Advertisers: bitset.FromIndices(numAdvertisers, a),
			Phrases:     phrases,
			leaf:        true,
			leafItem:    Item{Advertiser: a},
		}
		p.Nodes = append(p.Nodes, n)
		phrases.ForEach(func(q int) bool {
			tops[q] = append(tops[q], n)
			return true
		})
	}

	if !opts.DisableSharing {
		p.preMergeFragments(tops)
		p.greedyShare(tops)
	}
	// Completion: fold each phrase's frontier into a single root with
	// phrase-private merges, pairing smallest nodes first to keep the tree
	// shallow (Huffman-style).
	for q := range tops {
		p.Roots[q] = p.foldFrontier(q, tops[q])
	}
	p.computeUsedBy()
	return p, nil
}

// savingsBeyondFirst computes E[#occurring phrases of qw beyond the first]
// = Σ_q sr_q − (1 − Π_q (1 − sr_q)), the closed form of the paper's savings
// factor, without allocating.
func (p *Plan) savingsBeyondFirst(qu, qv bitset.Set) float64 {
	total, probNone := 0.0, 1.0
	qu.ForEach(func(q int) bool {
		if qv.Contains(q) {
			total += p.rates[q]
			probNone *= 1 - p.rates[q]
		}
		return true
	})
	return total - (1 - probNone)
}

// preMergeFragments performs the greedy's provably-first moves in bulk:
// leaves with the *same* phrase annotation (a fragment) are each other's
// best merge partners — the savings factor is monotone in the shared
// phrase set, and an intra-fragment merge keeps the full annotation — so
// each fragment is folded into balanced power-of-two subtrees (respecting
// |I_u| = |I_v|) before the pairwise greedy runs. This reduces the greedy's
// frontier from n leaves to O(#fragments · log) roots without changing
// which cross-fragment merges remain available.
func (p *Plan) preMergeFragments(tops [][]*Node) {
	groups := make(map[string][]*Node)
	var order []string
	for _, n := range p.Nodes {
		if !n.leaf || n.Phrases.IsEmpty() {
			continue
		}
		k := n.Phrases.Key()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], n)
	}
	for _, k := range order {
		members := groups[k]
		sig := members[0].Phrases
		// No reuse to gain unless ≥ 2 phrases can co-occur.
		if sig.Count() < 2 || p.savingsBeyondFirst(sig, sig) <= 0 {
			continue
		}
		// Fold equal-size nodes pairwise until sizes are distinct
		// (binary-counter decomposition).
		bySize := map[int][]*Node{}
		for _, n := range members {
			bySize[n.Size()] = append(bySize[n.Size()], n)
		}
		var roots []*Node
		for size := 1; len(bySize) > 0; size *= 2 {
			nodes := bySize[size]
			delete(bySize, size)
			for len(nodes) >= 2 {
				u, v := nodes[0], nodes[1]
				nodes = nodes[2:]
				w := p.newMerge(u, v, sig.Clone())
				p.SharedOperators++
				u.Phrases = bitset.New(p.NumPhrases)
				v.Phrases = bitset.New(p.NumPhrases)
				bySize[size*2] = append(bySize[size*2], w)
			}
			roots = append(roots, nodes...)
		}
		// Refresh the frontier of every phrase in the signature: drop the
		// fragment's original leaves (merged or not) and add the fold's
		// roots, which include any odd leftover leaves.
		member := make(map[*Node]bool, len(members))
		for _, n := range members {
			member[n] = true
		}
		sig.ForEach(func(q int) bool {
			keep := tops[q][:0]
			for _, n := range tops[q] {
				if member[n] {
					continue
				}
				keep = append(keep, n)
			}
			tops[q] = append(keep, roots...)
			return true
		})
	}
}

// bucketCap bounds the per-(phrase, size) candidate window greedyShare
// scans each level. Nodes beyond the window stay in the frontier and are
// reconsidered on later levels, so the cap trades per-level thoroughness
// for build time without losing candidates permanently.
const bucketCap = 64

// greedyShare is the paper's Section III-C heuristic: create shared merge
// nodes maximizing the expected savings
// |I_w| · E[occurrences of Q_w beyond the first], where Q_w is the set of
// phrases in whose frontier both children currently sit. Per the paper, a
// merge requires Q_u ∩ Q_v ≠ ∅, I_u ∩ I_v = ∅ (automatic within a
// frontier), and |I_u| = |I_v| — the size constraint is what keeps shared
// subtrees balanced, since the savings objective otherwise favors merging
// the largest nodes and would degrade tree shape.
//
// Rather than re-scanning all pairs after every single merge (quadratic ×
// number of merges), each level collects the positive-savings candidate
// pairs, then applies them best-first as a greedy matching — every node
// merges at most once per level, and savings are re-evaluated next level.
// Merging doubles node sizes, so the level count is logarithmic.
func (p *Plan) greedyShare(tops [][]*Node) {
	type cand struct {
		u, v *Node
		save float64
	}
	for {
		var cands []cand
		seenPair := make(map[[2]int]bool)
		for q := range tops {
			// Equal-size pairs only: bucket the frontier by size.
			bySize := make(map[int][]*Node)
			for _, n := range tops[q] {
				bySize[n.Size()] = append(bySize[n.Size()], n)
			}
			for _, bucket := range bySize {
				sort.Slice(bucket, func(a, b int) bool { return bucket[a].ID < bucket[b].ID })
				if len(bucket) > bucketCap {
					bucket = bucket[:bucketCap]
				}
				for i := 0; i < len(bucket); i++ {
					for j := i + 1; j < len(bucket); j++ {
						u, v := bucket[i], bucket[j]
						key := [2]int{u.ID, v.ID}
						if seenPair[key] {
							continue
						}
						seenPair[key] = true
						if u.Phrases.IntersectCount(v.Phrases) < 2 {
							continue // no second phrase to reuse the work
						}
						save := float64(u.Size()+v.Size()) * p.savingsBeyondFirst(u.Phrases, v.Phrases)
						if save > 0 {
							cands = append(cands, cand{u, v, save})
						}
					}
				}
			}
		}
		if len(cands) == 0 {
			return
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].save != cands[b].save {
				return cands[a].save > cands[b].save
			}
			if cands[a].u.ID != cands[b].u.ID {
				return cands[a].u.ID < cands[b].u.ID
			}
			return cands[a].v.ID < cands[b].v.ID
		})
		used := make(map[*Node]bool)
		merged := 0
		for _, c := range cands {
			if used[c.u] || used[c.v] {
				continue
			}
			qw := c.u.Phrases.Intersect(c.v.Phrases)
			if qw.Count() < 2 {
				continue
			}
			w := p.newMerge(c.u, c.v, qw)
			p.SharedOperators++
			merged++
			qw.ForEach(func(q int) bool {
				tops[q] = replaceInFrontier(tops[q], c.u, c.v, w)
				return true
			})
			c.u.Phrases = c.u.Phrases.Difference(qw)
			c.v.Phrases = c.v.Phrases.Difference(qw)
			used[c.u], used[c.v] = true, true
		}
		if merged == 0 {
			return
		}
	}
}

func (p *Plan) newMerge(u, v *Node, phrases bitset.Set) *Node {
	w := &Node{
		ID:          len(p.Nodes),
		Advertisers: u.Advertisers.Union(v.Advertisers),
		Phrases:     phrases,
		left:        u,
		right:       v,
	}
	p.Nodes = append(p.Nodes, w)
	return w
}

func replaceInFrontier(frontier []*Node, u, v, w *Node) []*Node {
	out := frontier[:0]
	for _, n := range frontier {
		if n != u && n != v {
			out = append(out, n)
		}
	}
	return append(out, w)
}

// foldFrontier merges a phrase's remaining frontier into one root using
// phrase-private operators, smallest pair first.
func (p *Plan) foldFrontier(q int, frontier []*Node) *Node {
	if len(frontier) == 0 {
		return nil
	}
	own := bitset.New(p.NumPhrases)
	own.Add(q)
	nodes := append([]*Node(nil), frontier...)
	for len(nodes) > 1 {
		sort.Slice(nodes, func(a, b int) bool {
			if nodes[a].Size() != nodes[b].Size() {
				return nodes[a].Size() < nodes[b].Size()
			}
			return nodes[a].ID < nodes[b].ID
		})
		w := p.newMerge(nodes[0], nodes[1], own.Clone())
		nodes = append(nodes[2:], w)
	}
	return nodes[0]
}

// computeUsedBy records, for every node, the phrases whose tree contains it
// (v ⤳ q in the paper's cost model).
func (p *Plan) computeUsedBy() {
	p.usedBy = make([]bitset.Set, len(p.Nodes))
	for i := range p.usedBy {
		p.usedBy[i] = bitset.New(p.NumPhrases)
	}
	for q, root := range p.Roots {
		if root == nil {
			continue
		}
		var walk func(n *Node)
		walk = func(n *Node) {
			if p.usedBy[n.ID].Contains(q) {
				return
			}
			p.usedBy[n.ID].Add(q)
			if !n.leaf {
				walk(n.left)
				walk(n.right)
			}
		}
		walk(root)
	}
}

// ExpectedFullSortCost is the paper's plan cost model:
// Σ_v |I_v| · (1 − Π_{q: v⤳q} (1 − sr_q)) over merge operators — the
// worst-case (full sort) number of operator invocations expected per round.
func (p *Plan) ExpectedFullSortCost() float64 {
	total := 0.0
	for _, n := range p.Nodes {
		if n.leaf {
			continue
		}
		probNone := 1.0
		p.usedBy[n.ID].ForEach(func(q int) bool {
			probNone *= 1 - p.rates[q]
			return true
		})
		if !p.usedBy[n.ID].IsEmpty() {
			total += float64(n.Size()) * (1 - probNone)
		}
	}
	return total
}

// ExpectedBeyondFirst computes the paper's savings factor: the expected
// number of queries (with the given occurrence rates) that occur beyond the
// first occurring one,
// Σ_i [Π_{j<i}(1−sr_j)] · sr_i · Σ_{j>i} sr_j,
// which equals E[N] − P(N ≥ 1) for N the number of occurring queries.
func ExpectedBeyondFirst(rates []float64) float64 {
	total := 0.0
	noneBefore := 1.0
	suffix := 0.0
	for _, r := range rates {
		suffix += r
	}
	for _, r := range rates {
		suffix -= r
		total += noneBefore * r * suffix
		noneBefore *= 1 - r
	}
	return total
}

// BeginRound resets every operator and installs the round's bids; bids must
// have length NumAdvertisers.
func (p *Plan) BeginRound(bids []float64) {
	if len(bids) != p.NumAdvertisers {
		panic(fmt.Sprintf("sharedsort: %d bids for %d advertisers", len(bids), p.NumAdvertisers))
	}
	for _, n := range p.Nodes {
		n.reset()
		if n.leaf {
			n.leafItem.Bid = bids[n.leafItem.Advertiser]
		}
	}
}

// RoundPulls sums operator invocations since the last BeginRound.
func (p *Plan) RoundPulls() int {
	t := 0
	for _, n := range p.Nodes {
		if !n.leaf {
			t += n.Pulls
		}
	}
	return t
}

// Stream returns a cursor over phrase q's descending-bid stream (an
// independent position per caller; the underlying nodes cache and share all
// produced prefixes). It returns nil if no advertiser is interested in q.
func (p *Plan) Stream(q int) *Stream {
	if p.Roots[q] == nil {
		return nil
	}
	return &Stream{node: p.Roots[q]}
}

// Stream is a per-consumer cursor over a phrase's sorted stream. It
// implements the threshold algorithm's Source interface.
type Stream struct {
	node *Node
	pos  int
}

// Next yields the next (advertiser, bid) in descending bid order.
func (s *Stream) Next() (int, float64, bool) {
	it, ok := s.node.Get(s.pos)
	if !ok {
		return 0, 0, false
	}
	s.pos++
	return it.Advertiser, it.Bid, true
}
