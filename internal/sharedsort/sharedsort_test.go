package sharedsort

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sharedwd/internal/bitset"
	"sharedwd/internal/ta"
)

// buildPlan is a test helper: phrases given as advertiser index lists.
func buildPlan(t *testing.T, n int, rates []float64, opts Options, phrases ...[]int) *Plan {
	t.Helper()
	interests := make([]bitset.Set, len(phrases))
	for i, ph := range phrases {
		interests[i] = bitset.FromIndices(n, ph...)
	}
	p, err := Build(n, interests, rates, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// directOrder returns the advertisers of ids sorted by descending bid.
func directOrder(ids []int, bids []float64) []int {
	out := append([]int(nil), ids...)
	sort.Slice(out, func(a, b int) bool {
		if bids[out[a]] != bids[out[b]] {
			return bids[out[a]] > bids[out[b]]
		}
		return out[a] < out[b]
	})
	return out
}

func drain(s *Stream) []int {
	var out []int
	for {
		id, _, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, id)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(3, []bitset.Set{bitset.New(3)}, []float64{0.5, 0.5}, Options{}); err == nil {
		t.Fatal("mismatched rates length should error")
	}
	if _, err := Build(3, []bitset.Set{bitset.New(4)}, []float64{0.5}, Options{}); err == nil {
		t.Fatal("capacity mismatch should error")
	}
	if _, err := Build(3, []bitset.Set{bitset.New(3)}, []float64{1.5}, Options{}); err == nil {
		t.Fatal("bad rate should error")
	}
}

func TestSinglePhraseSortsCorrectly(t *testing.T) {
	p := buildPlan(t, 6, []float64{1}, Options{}, []int{0, 2, 3, 5})
	bids := []float64{5, 0, 9, 1, 0, 7}
	p.BeginRound(bids)
	got := drain(p.Stream(0))
	want := directOrder([]int{0, 2, 3, 5}, bids)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEmptyPhrase(t *testing.T) {
	p := buildPlan(t, 4, []float64{1, 1}, Options{}, []int{0, 1}, nil)
	if p.Stream(1) != nil {
		t.Fatal("phrase with no advertisers should have nil stream")
	}
}

func TestLazyProduction(t *testing.T) {
	// Pulling only the top element must not sort the whole input.
	n := 128
	all := make([]int, n)
	bids := make([]float64, n)
	for i := range all {
		all[i] = i
		bids[i] = float64(i)
	}
	p := buildPlan(t, n, []float64{1}, Options{}, all)
	p.BeginRound(bids)
	id, bid, ok := p.Stream(0).Next()
	if !ok || id != n-1 || bid != float64(n-1) {
		t.Fatalf("top = %d/%v/%v", id, bid, ok)
	}
	full := p.RoundPulls()
	// A full sort costs Σ|I_v| ≈ n·log n invocations; the top element needs
	// at most one path per level plus register fills ≈ 2·log n per level
	// budget. Just assert we did far less than a full sort.
	if full > n*2 {
		t.Fatalf("pulled %d times for one element (n=%d); laziness broken", full, n)
	}
}

func TestSharedPrefixReuse(t *testing.T) {
	// Two phrases share advertisers {0..7}; phrase trees share the common
	// subtree, so draining phrase 1 after phrase 0 must not re-invoke the
	// shared operators.
	shared := []int{0, 1, 2, 3, 4, 5, 6, 7}
	p0 := append(append([]int{}, shared...), 8, 9)
	p1 := append(append([]int{}, shared...), 10, 11)
	p := buildPlan(t, 12, []float64{1, 1}, Options{}, p0, p1)
	if p.SharedOperators == 0 {
		t.Fatal("no shared operators created")
	}
	bids := []float64{3, 1, 4, 1, 5, 9, 2, 6, 8, 7, 0, 2.5}
	p.BeginRound(bids)
	drain(p.Stream(0))
	pullsAfterFirst := p.RoundPulls()
	drain(p.Stream(1))
	pullsAfterSecond := p.RoundPulls()
	// Draining phrase 1 costs only its private operators (10 advertisers →
	// well under a second full sort's worth of pulls).
	extra := pullsAfterSecond - pullsAfterFirst
	if extra >= pullsAfterFirst {
		t.Fatalf("no reuse: first drain %d pulls, second %d", pullsAfterFirst, extra)
	}
	// Both orders must still be correct.
	p.BeginRound(bids)
	got0 := drain(p.Stream(0))
	got1 := drain(p.Stream(1))
	want0 := directOrder(p0, bids)
	want1 := directOrder(p1, bids)
	for i := range want0 {
		if got0[i] != want0[i] {
			t.Fatalf("phrase0: got %v want %v", got0, want0)
		}
	}
	for i := range want1 {
		if got1[i] != want1[i] {
			t.Fatalf("phrase1: got %v want %v", got1, want1)
		}
	}
}

func TestEqualSizeConstraint(t *testing.T) {
	// The paper's |I_u| = |I_v| constraint: every greedy-created shared
	// operator must have equal-size children.
	shared := []int{0, 1, 2, 3}
	pA := append(append([]int{}, shared...), 4)
	pB := append(append([]int{}, shared...), 5)
	strict := buildPlan(t, 6, []float64{1, 1}, Options{}, pA, pB)
	count := 0
	for _, n := range strict.Nodes {
		if n.leaf || n.left == nil {
			continue
		}
		if n.Phrases.Count() >= 2 {
			if n.left.Size() != n.right.Size() {
				t.Fatalf("shared node %v has unequal children %d/%d", n, n.left.Size(), n.right.Size())
			}
			count++
		}
	}
	if count == 0 {
		t.Fatal("expected shared operators")
	}
}

func TestDisableSharing(t *testing.T) {
	shared := []int{0, 1, 2, 3}
	p := buildPlan(t, 6, []float64{1, 1}, Options{DisableSharing: true},
		append(append([]int{}, shared...), 4), append(append([]int{}, shared...), 5))
	if p.SharedOperators != 0 {
		t.Fatalf("SharedOperators = %d with sharing disabled", p.SharedOperators)
	}
}

func TestSharingReducesExpectedCost(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 64
	interests := make([]bitset.Set, 6)
	rates := make([]float64, 6)
	for q := range interests {
		s := bitset.New(n)
		for a := 0; a < n/2; a++ { // heavy overlap in the first half
			s.Add(a)
		}
		for a := n / 2; a < n; a++ {
			if rng.Intn(3) == 0 {
				s.Add(a)
			}
		}
		interests[q] = s
		rates[q] = 0.8
	}
	sharedPlan, err := Build(n, interests, rates, Options{})
	if err != nil {
		t.Fatal(err)
	}
	indep, err := Build(n, interests, rates, Options{DisableSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	if sharedPlan.ExpectedFullSortCost() >= indep.ExpectedFullSortCost() {
		t.Fatalf("shared cost %v ≥ independent cost %v",
			sharedPlan.ExpectedFullSortCost(), indep.ExpectedFullSortCost())
	}
}

func TestExpectedBeyondFirstClosedForm(t *testing.T) {
	cases := [][]float64{
		{}, {0.5}, {1, 1}, {0.3, 0.7}, {0.2, 0.2, 0.2}, {1, 0, 1}, {0.9, 0.1, 0.5, 0.5},
	}
	for _, rates := range cases {
		got := ExpectedBeyondFirst(rates)
		sum, probNone := 0.0, 1.0
		for _, r := range rates {
			sum += r
			probNone *= 1 - r
		}
		want := sum - (1 - probNone) // E[N] − P(N ≥ 1)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("rates %v: got %v, want %v", rates, got, want)
		}
	}
}

func TestQuickExpectedBeyondFirstOrderInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = rng.Float64()
		}
		a := ExpectedBeyondFirst(rates)
		shuffled := append([]float64(nil), rates...)
		rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return math.Abs(a-ExpectedBeyondFirst(shuffled)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAllPhrasesSorted: on random interest structures with random
// bids, every phrase stream is exactly the descending-bid order of its
// advertiser set, under both strict and relaxed size constraints, across
// multiple rounds with changing bids.
func TestQuickAllPhrasesSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		m := 1 + rng.Intn(5)
		interests := make([]bitset.Set, m)
		rates := make([]float64, m)
		for q := range interests {
			s := bitset.New(n)
			for a := 0; a < n; a++ {
				if rng.Intn(2) == 0 {
					s.Add(a)
				}
			}
			interests[q] = s
			rates[q] = rng.Float64()
		}
		opts := Options{DisableSharing: rng.Intn(2) == 0}
		p, err := Build(n, interests, rates, opts)
		if err != nil {
			return false
		}
		for round := 0; round < 2; round++ {
			bids := make([]float64, n)
			for i := range bids {
				bids[i] = float64(rng.Intn(20)) // ties likely
			}
			p.BeginRound(bids)
			for q := 0; q < m; q++ {
				s := p.Stream(q)
				if s == nil {
					if !interests[q].IsEmpty() {
						return false
					}
					continue
				}
				got := drain(s)
				want := directOrder(interests[q].Indices(), bids)
				if len(got) != len(want) {
					return false
				}
				for i := range got {
					if got[i] != want[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestThresholdAlgorithmIntegration drives the full Section III pipeline:
// shared merge-sort supplies the by-bid stream, a static per-phrase quality
// order supplies the other, and TA finds the top-k by b_i·c_i^q.
func TestThresholdAlgorithmIntegration(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 60
	shared := make([]int, 0, 40)
	for a := 0; a < 40; a++ {
		shared = append(shared, a)
	}
	ph0 := append(append([]int{}, shared...), 40, 41, 42)
	ph1 := append(append([]int{}, shared...), 50, 51)
	p := buildPlan(t, n, []float64{1, 1}, Options{}, ph0, ph1)

	bids := make([]float64, n)
	for i := range bids {
		bids[i] = rng.Float64() * 10
	}
	quality := make([][]float64, 2) // per-phrase c_i^q
	for q := range quality {
		quality[q] = make([]float64, n)
		for i := range quality[q] {
			quality[q][i] = rng.Float64()
		}
	}
	p.BeginRound(bids)

	for q, phraseAdv := range [][]int{ph0, ph1} {
		// Static quality order, precomputed per the paper's footnote.
		byQ := append([]int(nil), phraseAdv...)
		sort.Slice(byQ, func(a, b int) bool { return quality[q][byQ[a]] > quality[q][byQ[b]] })
		qVals := make([]float64, len(byQ))
		for i, id := range byQ {
			qVals[i] = quality[q][id]
		}
		score := func(id int) float64 { return bids[id] * quality[q][id] }
		got, st := ta.TopK(3, p.Stream(q), &ta.SliceSource{IDs: byQ, Vals: qVals}, score)

		type sc struct {
			id int
			s  float64
		}
		var all []sc
		for _, id := range phraseAdv {
			all = append(all, sc{id, score(id)})
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].s != all[b].s {
				return all[a].s > all[b].s
			}
			return all[a].id < all[b].id
		})
		for i, e := range got.Entries() {
			if e.ID != all[i].id {
				t.Fatalf("phrase %d rank %d: got %d want %d", q, i, e.ID, all[i].id)
			}
		}
		if st.SortedAccesses > 2*len(phraseAdv) {
			t.Fatalf("TA overran: %d accesses for %d advertisers", st.SortedAccesses, len(phraseAdv))
		}
	}
}

func BenchmarkSharedVsIndependentDrain(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 512
	interests := make([]bitset.Set, 8)
	rates := make([]float64, 8)
	for q := range interests {
		s := bitset.New(n)
		for a := 0; a < 256; a++ {
			s.Add(a)
		}
		for a := 256; a < n; a++ {
			if rng.Intn(4) == 0 {
				s.Add(a)
			}
		}
		interests[q] = s
		rates[q] = 1
	}
	bids := make([]float64, n)
	for i := range bids {
		bids[i] = rng.Float64()
	}
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"shared", Options{}},
		{"independent", Options{DisableSharing: true}},
	} {
		p, err := Build(n, interests, rates, cfg.opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.BeginRound(bids)
				for q := range interests {
					s := p.Stream(q)
					for j := 0; j < 10; j++ { // top-10 per phrase
						s.Next()
					}
				}
			}
		})
	}
}
