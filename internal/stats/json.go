package stats

import (
	"encoding/json"
	"fmt"
)

// summaryWire is Summary's stable JSON schema: the exact Welford state, so
// a marshal/unmarshal round trip reproduces the summary bit-for-bit and
// merged fleet views keep combining exactly after crossing the wire.
type summaryWire struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	M2    float64 `json:"m2"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// MarshalJSON encodes the summary as its exact Welford state
// {count, mean, m2, min, max}.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryWire{Count: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max})
}

// UnmarshalJSON restores a summary from its wire state. A negative count is
// rejected; the zero object decodes to the empty summary.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var w summaryWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Count < 0 {
		return fmt.Errorf("stats: summary with negative count %d", w.Count)
	}
	*s = Summary{n: w.Count, mean: w.Mean, m2: w.M2, min: w.Min, max: w.Max}
	return nil
}

// histogramWire is Histogram's stable JSON schema: the bucket geometry and
// counts, plus the total so the round trip needs no recount.
type histogramWire struct {
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	Buckets []int   `json:"buckets"`
	Count   int     `json:"count"`
	// Invalid is the dropped non-finite observation tally; omitted when
	// zero so pre-existing payloads decode unchanged.
	Invalid int `json:"invalid,omitempty"`
}

// MarshalJSON encodes the histogram as {lo, hi, buckets, count, invalid}.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramWire{Lo: h.Lo, Hi: h.Hi, Buckets: h.Buckets, Count: h.n, Invalid: h.invalid})
}

// UnmarshalJSON restores a histogram from its wire state, validating the
// geometry and that the bucket counts sum to the recorded total.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Buckets) == 0 || w.Hi <= w.Lo {
		return fmt.Errorf("stats: invalid histogram geometry [%v,%v) x%d", w.Lo, w.Hi, len(w.Buckets))
	}
	total := 0
	for i, c := range w.Buckets {
		if c < 0 {
			return fmt.Errorf("stats: negative count %d in bucket %d", c, i)
		}
		total += c
	}
	if total != w.Count {
		return fmt.Errorf("stats: bucket counts sum to %d, header says %d", total, w.Count)
	}
	if w.Invalid < 0 {
		return fmt.Errorf("stats: negative invalid count %d", w.Invalid)
	}
	*h = Histogram{Lo: w.Lo, Hi: w.Hi, Buckets: w.Buckets, n: w.Count, invalid: w.Invalid}
	return nil
}
