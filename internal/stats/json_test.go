package stats

import (
	"encoding/json"
	"testing"
)

func TestSummaryJSONRoundTrip(t *testing.T) {
	var s Summary
	for _, x := range []float64{0.5, 1.25, -3, 42, 0.125} {
		s.Add(x)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip: %+v != %+v", back, s)
	}
	// The restored summary keeps merging exactly.
	var other Summary
	other.Add(7)
	a, b := s, back
	a.Merge(other)
	b.Merge(other)
	if a != b {
		t.Fatalf("merge after round trip diverged: %+v != %+v", a, b)
	}

	var zero Summary
	data, err = json.Marshal(zero)
	if err != nil {
		t.Fatal(err)
	}
	var zback Summary
	if err := json.Unmarshal(data, &zback); err != nil {
		t.Fatal(err)
	}
	if zback != zero {
		t.Fatalf("zero round trip: %+v", zback)
	}

	if err := json.Unmarshal([]byte(`{"count":-1}`), &back); err == nil {
		t.Fatal("accepted negative count")
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(0, 1, 16)
	for _, x := range []float64{0.01, 0.5, 0.5, 0.99, 2.5, -1} {
		h.Add(x)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != h.N() || back.Lo != h.Lo || back.Hi != h.Hi {
		t.Fatalf("round trip header: %+v", back)
	}
	for i := range h.Buckets {
		if back.Buckets[i] != h.Buckets[i] {
			t.Fatalf("bucket %d: %d != %d", i, back.Buckets[i], h.Buckets[i])
		}
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
		if back.Quantile(q) != h.Quantile(q) {
			t.Fatalf("quantile %v: %v != %v", q, back.Quantile(q), h.Quantile(q))
		}
	}

	for name, bad := range map[string]string{
		"inverted range":  `{"lo":1,"hi":0,"buckets":[0],"count":0}`,
		"no buckets":      `{"lo":0,"hi":1,"buckets":[],"count":0}`,
		"negative bucket": `{"lo":0,"hi":1,"buckets":[-1],"count":-1}`,
		"count mismatch":  `{"lo":0,"hi":1,"buckets":[1,2],"count":4}`,
	} {
		var h2 Histogram
		if err := json.Unmarshal([]byte(bad), &h2); err == nil {
			t.Errorf("%s: accepted %s", name, bad)
		}
	}
}
