// Package stats provides the small statistics toolkit used by the benchmark
// harness and the round server's observability: means, variances,
// confidence intervals, fixed-width histograms, and histogram quantile
// estimation for summarizing per-round and per-request measurements.
//
// Thread safety: no type in this package is safe for concurrent use; each
// Summary/Histogram must be owned by one goroutine or guarded externally
// (internal/server guards its histograms with a mutex).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates a stream of float64 observations using Welford's
// online algorithm, so harness loops never need to buffer samples.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 if empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// StderrMean returns the standard error of the mean.
func (s *Summary) StderrMean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Stddev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of an approximate 95% confidence interval for
// the mean (normal approximation; fine for the harness's n ≥ 30 runs).
func (s *Summary) CI95() float64 { return 1.96 * s.StderrMean() }

// Merge folds another summary into s as if every observation recorded in o
// had been recorded in s, using the Chan et al. parallel variant of
// Welford's update. Mean, variance, min, max, and N are all exact, so
// per-shard summaries can be combined into one fleet-wide summary.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	n1, n2 := float64(s.n), float64(o.n)
	d := o.mean - s.mean
	s.mean += d * n2 / (n1 + n2)
	s.m2 += o.m2 + d*d*n1*n2/(n1+n2)
	s.n += o.n
}

// String renders "mean ± ci95 (n=..., min=..., max=...)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d, min=%.4g, max=%.4g)",
		s.Mean(), s.CI95(), s.n, s.min, s.max)
}

// Mean returns the mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on empty input or q
// outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-width histogram over [Lo, Hi); observations outside
// the range are clamped into the edge buckets. Non-finite observations
// (NaN, ±Inf) are never bucketed — the float→int conversion their bucket
// index would go through is platform-defined — but are counted in a
// separate invalid tally (see Invalid) so corrupt samples stay visible.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	n       int
	// invalid counts NaN/±Inf observations dropped by AddN.
	invalid int
}

// NewHistogram creates a histogram with the given bucket count over [lo, hi).
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) x%d", lo, hi, buckets))
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, buckets)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) { h.AddN(x, 1) }

// AddN records n identical observations in one bucket update — what a
// histogram merge across mismatched geometries uses to stay O(buckets)
// instead of O(observations). n must be non-negative; n = 0 is a no-op.
// A non-finite x (NaN, ±Inf) is dropped into the invalid tally instead of
// a bucket: NaN in particular would otherwise flow through a float→int
// conversion whose result is platform-defined and corrupt an arbitrary
// bucket silently.
func (h *Histogram) AddN(x float64, n int) {
	if n < 0 {
		panic(fmt.Sprintf("stats: AddN of %d observations", n))
	}
	if n == 0 {
		return
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		h.invalid += n
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i] += n
	h.n += n
}

// N returns the number of recorded (bucketed) observations; invalid
// observations are excluded.
func (h *Histogram) N() int { return h.n }

// Invalid returns the number of non-finite observations dropped by AddN.
func (h *Histogram) Invalid() int { return h.invalid }

// Clone returns an independent copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.Buckets = append([]int(nil), h.Buckets...)
	return &c
}

// Merge folds another histogram into h. When the two histograms share the
// same geometry (Lo, Hi, bucket count) — the common case, since every shard
// worker builds its histograms from the same config — counts merge
// bucket-wise and the result is exact. Otherwise each of o's occupied
// buckets is re-added at its midpoint, which preserves N and is accurate to
// h's bucket resolution.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	h.invalid += o.invalid
	if o.n == 0 {
		return
	}
	if h.Lo == o.Lo && h.Hi == o.Hi && len(h.Buckets) == len(o.Buckets) {
		for i, c := range o.Buckets {
			h.Buckets[i] += c
		}
		h.n += o.n
		return
	}
	// One weighted add per occupied bucket keeps the merge O(buckets) —
	// re-adding count-by-count would be O(total observations), pathological
	// for soak-length shard merges — while preserving N exactly.
	width := (o.Hi - o.Lo) / float64(len(o.Buckets))
	for i, c := range o.Buckets {
		if c == 0 {
			continue
		}
		h.AddN(o.Lo+(float64(i)+0.5)*width, c)
	}
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// linear interpolation within the bucket containing the target rank. The
// estimate is exact up to bucket resolution; observations clamped into the
// edge buckets bias the extreme quantiles toward the range bounds. Returns
// 0 on an empty histogram; panics on q outside [0,1].
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	if h.n == 0 {
		return 0
	}
	target := q * float64(h.n)
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	cum := 0.0
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= target {
			frac := (target - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return h.Lo + (float64(i)+frac)*width
		}
		cum += float64(c)
	}
	return h.Hi
}

// String renders an ASCII bar chart, one bucket per line.
func (h *Histogram) String() string {
	maxCount := 0
	for _, c := range h.Buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		bar := 0
		if maxCount > 0 {
			bar = c * 40 / maxCount
		}
		fmt.Fprintf(&b, "[%8.3g,%8.3g) %6d %s\n",
			h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c, strings.Repeat("#", bar))
	}
	return b.String()
}
