package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Population variance is 4; sample variance = 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Fatal("CI95 should be positive")
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StderrMean() != 0 {
		t.Fatal("empty summary should be all zero")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Variance() != 0 || s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single-sample summary wrong")
	}
}

func TestQuickSummaryMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var s Summary
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			s.Add(xs[i])
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Variance()-wantVar) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be reordered.
	xs2 := []float64{3, 1, 2}
	Quantile(xs2, 0.5)
	if xs2[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for i, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.9, 10, 100} {
		h.Add(x)
	}
	want := []int{3, 1, 1, 0, 3} // clamped: -1,0,1.9 | 2 | 5 | | 9.9,10,100
	for i, c := range want {
		if h.Buckets[i] != c {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, h.Buckets[i], c, h.Buckets)
		}
	}
	if h.N() != 8 {
		t.Fatalf("N = %d", h.N())
	}
	if !strings.Contains(h.String(), "#") {
		t.Fatal("String should draw bars")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5) // one observation per bucket
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0, 0, 1.01},
		{0.5, 50, 1.01},
		{0.95, 95, 1.01},
		{1, 100, 0.01},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%v) = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
	if got := NewHistogram(0, 1, 4).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on q > 1")
			}
		}()
		h.Quantile(1.5)
	}()
}

func TestSummaryMerge(t *testing.T) {
	// Merging two halves must equal adding the whole stream to one summary.
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 5
	}
	var whole, a, b Summary
	for i, x := range xs {
		whole.Add(x)
		if i < 100 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("N = %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-6 {
		t.Fatalf("Variance = %v, want %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("Min/Max = %v/%v, want %v/%v", a.Min(), a.Max(), whole.Min(), whole.Max())
	}

	// Merging into or from an empty summary is the identity.
	var empty Summary
	c := a
	c.Merge(empty)
	if c != a {
		t.Fatal("merge of empty summary changed the receiver")
	}
	empty.Merge(a)
	if empty != a {
		t.Fatal("merge into empty summary should copy")
	}
}

func TestHistogramMergeSameGeometry(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 10, 5)
	for _, x := range []float64{1, 3, 5} {
		a.Add(x)
	}
	for _, x := range []float64{3, 7, 9, 11} {
		b.Add(x)
	}
	a.Merge(b)
	if a.N() != 7 {
		t.Fatalf("N = %d, want 7", a.N())
	}
	want := []int{1, 2, 1, 1, 2}
	for i, c := range want {
		if a.Buckets[i] != c {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, a.Buckets[i], c, a.Buckets)
		}
	}
	if b.N() != 4 {
		t.Fatal("merge mutated its argument")
	}
	a.Merge(nil)
	if a.N() != 7 {
		t.Fatal("merge of nil histogram changed the receiver")
	}
}

func TestHistogramMergeDifferentGeometry(t *testing.T) {
	a := NewHistogram(0, 10, 10)
	b := NewHistogram(0, 20, 4) // midpoints 2.5, 7.5, 12.5, 17.5
	b.Add(2)
	b.Add(6)
	b.Add(19)
	a.Merge(b)
	if a.N() != 3 {
		t.Fatalf("N = %d, want 3", a.N())
	}
	if a.Buckets[2] != 1 || a.Buckets[7] != 1 || a.Buckets[9] != 1 {
		t.Fatalf("midpoint re-add landed wrong: %v", a.Buckets)
	}
}

// TestQuickHistogramMerge is the Merge property test: for matching
// geometries the merge is exact (bucket-wise identical to recording both
// streams into one histogram); for mismatched geometries the weighted
// single-add per occupied bucket must land every observation exactly where
// midpoint re-adding (Add(mid) repeated count times) would, preserving N.
func TestQuickHistogramMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		newGeom := func() (lo, hi float64, buckets int) {
			lo = rng.Float64()*20 - 10
			hi = lo + 0.5 + rng.Float64()*30
			return lo, hi, 1 + rng.Intn(24)
		}
		lo, hi, nb := newGeom()
		h := NewHistogram(lo, hi, nb)
		ref := NewHistogram(lo, hi, nb)
		fill := func(dst *Histogram, n int, sampleLo, sampleHi float64) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = sampleLo + rng.Float64()*(sampleHi-sampleLo)
				dst.Add(xs[i])
			}
			return xs
		}
		for _, x := range fill(h, rng.Intn(50), lo-5, hi+5) {
			ref.Add(x)
		}

		var o *Histogram
		matching := seed%2 == 0
		if matching {
			o = NewHistogram(lo, hi, nb)
			for _, x := range fill(o, 1+rng.Intn(500), lo-5, hi+5) {
				ref.Add(x)
			}
		} else {
			olo, ohi, onb := newGeom()
			o = NewHistogram(olo, ohi, onb)
			fill(o, 1+rng.Intn(500), olo-5, ohi+5)
			// The reference replays each occupied bucket with the old
			// O(observations) per-midpoint loop.
			width := (o.Hi - o.Lo) / float64(len(o.Buckets))
			for i, c := range o.Buckets {
				mid := o.Lo + (float64(i)+0.5)*width
				for k := 0; k < c; k++ {
					ref.Add(mid)
				}
			}
		}

		before := o.Clone()
		h.Merge(o)
		if h.N() != ref.N() {
			t.Logf("seed %d: merged N %d, want %d", seed, h.N(), ref.N())
			return false
		}
		for i := range h.Buckets {
			if h.Buckets[i] != ref.Buckets[i] {
				t.Logf("seed %d (matching=%v): bucket %d = %d, want %d",
					seed, matching, i, h.Buckets[i], ref.Buckets[i])
				return false
			}
		}
		for i := range o.Buckets {
			if o.Buckets[i] != before.Buckets[i] || o.N() != before.N() {
				t.Logf("seed %d: Merge mutated its argument", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramAddN(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddN(3, 4)
	h.AddN(99, 2) // clamps into the top bucket
	h.AddN(1, 0)  // no-op
	if h.N() != 6 || h.Buckets[1] != 4 || h.Buckets[4] != 2 {
		t.Fatalf("AddN landed wrong: N=%d buckets=%v", h.N(), h.Buckets)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddN with negative count should panic")
		}
	}()
	h.AddN(1, -1)
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(3)
	c := h.Clone()
	c.Add(7)
	if h.N() != 1 || c.N() != 2 {
		t.Fatalf("clone not independent: h.N=%d c.N=%d", h.N(), c.N())
	}
	if h.Buckets[3] != 0 || c.Buckets[3] != 1 {
		t.Fatalf("clone shares buckets: %v vs %v", h.Buckets, c.Buckets)
	}
}

// TestHistogramNonFinite is the NaN-bucket regression: a non-finite
// observation must never reach the float→int bucket-index conversion
// (whose result for NaN is platform-defined) — it lands in the counted
// invalid tally instead, buckets and N untouched.
func TestHistogramNonFinite(t *testing.T) {
	for _, tc := range []struct {
		name        string
		x           float64
		n           int
		wantInvalid int
	}{
		{"nan", math.NaN(), 1, 1},
		{"nan-batch", math.NaN(), 5, 5},
		{"+inf", math.Inf(1), 2, 2},
		{"-inf", math.Inf(-1), 3, 3},
		{"finite", 0.5, 4, 0},
		{"zero-count-nan", math.NaN(), 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(0, 1, 4)
			h.AddN(tc.x, tc.n)
			if got := h.Invalid(); got != tc.wantInvalid {
				t.Fatalf("Invalid() = %d, want %d", got, tc.wantInvalid)
			}
			wantN := 0
			if tc.wantInvalid == 0 {
				wantN = tc.n
			}
			if h.N() != wantN {
				t.Fatalf("N() = %d, want %d", h.N(), wantN)
			}
			total := 0
			for _, c := range h.Buckets {
				if c < 0 {
					t.Fatalf("corrupted bucket counts %v", h.Buckets)
				}
				total += c
			}
			if total != wantN {
				t.Fatalf("bucket sum %d, want %d", total, wantN)
			}
		})
	}
}

// TestHistogramInvalidMergeAndJSON: the invalid tally survives merges
// (both geometries) and the JSON round trip, and a histogram holding only
// invalid observations still merges without disturbing the target.
func TestHistogramInvalidMergeAndJSON(t *testing.T) {
	a := NewHistogram(0, 1, 4)
	a.Add(0.25)
	a.Add(math.NaN())
	b := NewHistogram(0, 1, 4)
	b.Add(math.Inf(1))
	a.Merge(b)
	if a.Invalid() != 2 || a.N() != 1 {
		t.Fatalf("same-geometry merge: invalid %d, n %d", a.Invalid(), a.N())
	}
	c := NewHistogram(0, 2, 8) // different geometry
	c.Add(math.Inf(-1))
	a.Merge(c)
	if a.Invalid() != 3 || a.N() != 1 {
		t.Fatalf("cross-geometry merge: invalid %d, n %d", a.Invalid(), a.N())
	}

	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Invalid() != 3 || back.N() != 1 {
		t.Fatalf("round trip: invalid %d, n %d", back.Invalid(), back.N())
	}
	// Negative invalid counts are rejected on the wire.
	if err := json.Unmarshal([]byte(`{"lo":0,"hi":1,"buckets":[0],"count":0,"invalid":-1}`), &back); err == nil {
		t.Fatal("negative invalid accepted")
	}
	// Pre-existing payloads without the field decode to zero.
	if err := json.Unmarshal([]byte(`{"lo":0,"hi":1,"buckets":[2],"count":2}`), &back); err != nil || back.Invalid() != 0 {
		t.Fatalf("legacy payload: %v, invalid %d", err, back.Invalid())
	}
}
