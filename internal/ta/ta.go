// Package ta implements the threshold algorithm of Fagin, Lotem, and Naor
// (PODS'01), which Section III-A of the paper uses to find the top-k
// advertisers by b_i·c_i^q when the advertiser-specific click-through factor
// c_i^q varies per bid phrase.
//
// The algorithm consumes two sorted access paths — advertisers by descending
// bid b_i and by descending quality factor c_i^q — performing random access
// to complete each newly seen advertiser's score, and stops as soon as the
// k-th best score seen is at least the threshold b̄·c̄ formed from the last
// values read on each path. It is instance optimal among algorithms that
// make no wild guesses.
package ta

import (
	"sharedwd/internal/topk"
)

// Source yields (advertiser, value) pairs in descending value order. Next
// reports ok=false when exhausted.
type Source interface {
	Next() (id int, val float64, ok bool)
}

// SliceSource adapts a pre-sorted slice of (ID, Val) pairs to a Source.
type SliceSource struct {
	IDs  []int
	Vals []float64
	pos  int
}

// Next yields the next pair.
func (s *SliceSource) Next() (int, float64, bool) {
	if s.pos >= len(s.IDs) {
		return 0, 0, false
	}
	i := s.pos
	s.pos++
	return s.IDs[i], s.Vals[i], true
}

// Stats reports the work the threshold algorithm performed.
type Stats struct {
	// SortedAccesses counts Next calls that returned an item, across both
	// lists. This is the quantity shared sorting reduces.
	SortedAccesses int
	// RandomAccesses counts score completions for newly seen advertisers.
	RandomAccesses int
	// Stages counts threshold-check rounds (one pull from each list).
	Stages int
}

// TopK finds the k advertisers maximizing score(id) using the threshold
// algorithm over the two descending-sorted access paths. byBid must be
// sorted by descending bid, byQuality by descending quality; score(id) must
// equal bid(id)·quality(id) for consistency of the threshold bound. Both
// paths must enumerate the same advertiser set.
func TopK(k int, byBid, byQuality Source, score func(id int) float64) (*topk.List, Stats) {
	var st Stats
	best := topk.New(k)
	seen := make(map[int]bool)

	lastBid, lastQual := 0.0, 0.0
	bidOK, qualOK := true, true
	observe := func(id int) {
		if seen[id] {
			return
		}
		seen[id] = true
		st.RandomAccesses++
		best.Push(topk.Entry{ID: id, Score: score(id)})
	}
	for bidOK || qualOK {
		st.Stages++
		if bidOK {
			id, v, ok := byBid.Next()
			if ok {
				st.SortedAccesses++
				lastBid = v
				observe(id)
			} else {
				bidOK = false
			}
		}
		if qualOK {
			id, v, ok := byQuality.Next()
			if ok {
				st.SortedAccesses++
				lastQual = v
				observe(id)
			} else {
				qualOK = false
			}
		}
		// Threshold: no unseen advertiser can beat lastBid·lastQual. Valid
		// once both lists have produced at least one value.
		if st.SortedAccesses < 2 {
			continue
		}
		if best.Len() == k {
			if min, ok := best.Min(); ok && min.Score >= lastBid*lastQual {
				break
			}
		}
	}
	return best, st
}
