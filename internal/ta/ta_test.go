package ta

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sharedwd/internal/topk"
)

// sortedSource builds a SliceSource over the ids sorted descending by val.
func sortedSource(ids []int, val func(id int) float64) *SliceSource {
	s := append([]int(nil), ids...)
	sort.Slice(s, func(a, b int) bool {
		va, vb := val(s[a]), val(s[b])
		if va != vb {
			return va > vb
		}
		return s[a] < s[b]
	})
	vals := make([]float64, len(s))
	for i, id := range s {
		vals[i] = val(id)
	}
	return &SliceSource{IDs: s, Vals: vals}
}

func TestSliceSource(t *testing.T) {
	s := &SliceSource{IDs: []int{3, 1}, Vals: []float64{9, 2}}
	id, v, ok := s.Next()
	if !ok || id != 3 || v != 9 {
		t.Fatalf("Next = %d %v %v", id, v, ok)
	}
	s.Next()
	if _, _, ok := s.Next(); ok {
		t.Fatal("exhausted source should report !ok")
	}
}

func TestTopKBasic(t *testing.T) {
	ids := []int{0, 1, 2, 3}
	bid := func(id int) float64 { return []float64{10, 8, 6, 1}[id] }
	qual := func(id int) float64 { return []float64{0.1, 0.9, 0.5, 1.0}[id] }
	score := func(id int) float64 { return bid(id) * qual(id) }
	best, st := TopK(2, sortedSource(ids, bid), sortedSource(ids, qual), score)
	// Scores: 1.0, 7.2, 3.0, 1.0 → top2 = ids 1, 2.
	if got := best.IDs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("TopK IDs = %v, want [1 2]", got)
	}
	if st.SortedAccesses == 0 || st.Stages == 0 || st.RandomAccesses == 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
}

func TestTopKEarlyTermination(t *testing.T) {
	// One advertiser dominates both lists: TA should stop after ~k stages,
	// far before scanning all n.
	n := 1000
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	bid := func(id int) float64 { return float64(n - id) }
	qual := func(id int) float64 { return 1.0 / (1.0 + float64(id)) }
	score := func(id int) float64 { return bid(id) * qual(id) }
	best, st := TopK(3, sortedSource(ids, bid), sortedSource(ids, qual), score)
	if best.Len() != 3 {
		t.Fatalf("Len = %d", best.Len())
	}
	if st.SortedAccesses >= n {
		t.Fatalf("TA did not terminate early: %d sorted accesses for n=%d", st.SortedAccesses, n)
	}
}

func TestTopKFewerThanK(t *testing.T) {
	ids := []int{0, 1}
	f := func(id int) float64 { return float64(id + 1) }
	best, _ := TopK(5, sortedSource(ids, f), sortedSource(ids, f), func(id int) float64 { return f(id) * f(id) })
	if best.Len() != 2 {
		t.Fatalf("Len = %d, want 2", best.Len())
	}
}

func TestTopKEmpty(t *testing.T) {
	best, st := TopK(3, &SliceSource{}, &SliceSource{}, func(int) float64 { return 0 })
	if best.Len() != 0 {
		t.Fatal("empty input should yield empty result")
	}
	if st.SortedAccesses != 0 {
		t.Fatalf("SortedAccesses = %d", st.SortedAccesses)
	}
}

// TestQuickMatchesExhaustive: TA returns exactly the top-k by b·c on random
// inputs, and never does more than 2n sorted accesses.
func TestQuickMatchesExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		k := 1 + rng.Intn(8)
		bids := make([]float64, n)
		quals := make([]float64, n)
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
			bids[i] = rng.Float64() * 10
			quals[i] = rng.Float64()
		}
		score := func(id int) float64 { return bids[id] * quals[id] }
		got, st := TopK(k, sortedSource(ids, func(id int) float64 { return bids[id] }),
			sortedSource(ids, func(id int) float64 { return quals[id] }), score)

		want := topk.New(k)
		for _, id := range ids {
			want.Push(topk.Entry{ID: id, Score: score(id)})
		}
		return got.Equal(want) && st.SortedAccesses <= 2*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestInstanceOptimalityShape: with correlated lists (same order), TA stops
// after about k stages; with anti-correlated lists it may need more — but on
// correlated inputs sorted accesses must be O(k), independent of n.
func TestInstanceOptimalityShape(t *testing.T) {
	for _, n := range []int{100, 1000, 10000} {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		val := func(id int) float64 { return float64(n - id) }
		_, st := TopK(5, sortedSource(ids, val), sortedSource(ids, val),
			func(id int) float64 { return val(id) * val(id) })
		if st.SortedAccesses > 20 {
			t.Fatalf("n=%d: %d sorted accesses; should be O(k) on correlated lists", n, st.SortedAccesses)
		}
	}
}

func BenchmarkTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	ids := make([]int, n)
	bids := make([]float64, n)
	quals := make([]float64, n)
	for i := range ids {
		ids[i] = i
		bids[i] = rng.Float64() * 10
		quals[i] = rng.Float64()
	}
	bySrc := sortedSource(ids, func(id int) float64 { return bids[id] })
	byQ := sortedSource(ids, func(id int) float64 { return quals[id] })
	score := func(id int) float64 { return bids[id] * quals[id] }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb, qq := *bySrc, *byQ // reset positions
		TopK(10, &bb, &qq, score)
	}
}
