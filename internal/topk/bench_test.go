package topk

import (
	"math/rand"
	"testing"
)

func benchList(rng *rand.Rand, k, pushes, idSpan, idBase int) *List {
	l := New(k)
	for i := 0; i < pushes; i++ {
		l.Push(Entry{ID: idBase + rng.Intn(idSpan), Score: rng.Float64()})
	}
	return l
}

// BenchmarkMergeInto measures the in-place ⊕ the slab executor runs per
// internal node; steady state must be 0 allocs/op.
func BenchmarkMergeInto(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct {
		name string
		x, y *List
	}{
		{"overlapping", benchList(rng, 10, 20, 10000, 0), benchList(rng, 10, 20, 10000, 0)},
		{"disjoint", benchList(rng, 10, 20, 5000, 0), benchList(rng, 10, 20, 5000, 5000)},
		{"oneEmpty", benchList(rng, 10, 20, 10000, 0), New(10)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			dst := New(10)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MergeInto(dst, c.x, c.y)
			}
		})
	}
}

// BenchmarkTopKMergeKernel compares the flat merge kernels against the
// generic list path on the same data: MergeRuns vs MergeInto for a binary
// merge of two short runs, and FoldRun vs a MergeInto fold for the n-way
// case the compiler emits for fused fragment chains. The kernel rows must be
// 0 allocs/op; their ns/op advantage is the per-node saving the flat
// executor multiplies across the plan.
func BenchmarkTopKMergeKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const k = 10
	binCases := []struct {
		name string
		x, y *List
	}{
		{"overlapping", benchList(rng, k, 20, 10000, 0), benchList(rng, k, 20, 10000, 0)},
		{"disjoint", benchList(rng, k, 20, 5000, 0), benchList(rng, k, 20, 5000, 5000)},
	}
	for _, c := range binCases {
		xr, yr := c.x.Entries(), c.y.Entries()
		b.Run("mergeRuns/"+c.name, func(b *testing.B) {
			dst := make([]Entry, k)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MergeRuns(dst, k, xr, yr)
			}
		})
		b.Run("mergeInto/"+c.name, func(b *testing.B) {
			dst := New(k)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MergeInto(dst, c.x, c.y)
			}
		})
	}
	// High-fanout fold: 16 short runs into one accumulator.
	lists := make([]*List, 16)
	runs := make([][]Entry, 16)
	for i := range lists {
		lists[i] = benchList(rng, k, 8, 10000, 0)
		runs[i] = lists[i].Entries()
	}
	b.Run("foldRun/fanout=16", func(b *testing.B) {
		run := make([]Entry, k)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			for _, src := range runs {
				n = FoldRun(run, n, k, src)
			}
		}
	})
	b.Run("mergeIntoFold/fanout=16", func(b *testing.B) {
		acc, tmp := New(k), New(k)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc.Reset()
			for _, l := range lists {
				MergeInto(tmp, acc, l)
				acc, tmp = tmp, acc
			}
		}
	})
}

// BenchmarkMergeAll measures the fold; after the accumulate fix it allocates
// two accumulators total instead of one fresh list per element.
func BenchmarkMergeAll(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	lists := make([]*List, 64)
	for i := range lists {
		lists[i] = benchList(rng, 10, 8, 10000, 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MergeAll(lists...)
	}
}
