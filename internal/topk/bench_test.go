package topk

import (
	"math/rand"
	"testing"
)

func benchList(rng *rand.Rand, k, pushes, idSpan, idBase int) *List {
	l := New(k)
	for i := 0; i < pushes; i++ {
		l.Push(Entry{ID: idBase + rng.Intn(idSpan), Score: rng.Float64()})
	}
	return l
}

// BenchmarkMergeInto measures the in-place ⊕ the slab executor runs per
// internal node; steady state must be 0 allocs/op.
func BenchmarkMergeInto(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct {
		name string
		x, y *List
	}{
		{"overlapping", benchList(rng, 10, 20, 10000, 0), benchList(rng, 10, 20, 10000, 0)},
		{"disjoint", benchList(rng, 10, 20, 5000, 0), benchList(rng, 10, 20, 5000, 5000)},
		{"oneEmpty", benchList(rng, 10, 20, 10000, 0), New(10)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			dst := New(10)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MergeInto(dst, c.x, c.y)
			}
		})
	}
}

// BenchmarkMergeAll measures the fold; after the accumulate fix it allocates
// two accumulators total instead of one fresh list per element.
func BenchmarkMergeAll(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	lists := make([]*List, 64)
	for i := range lists {
		lists[i] = benchList(rng, 10, 8, 10000, 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MergeAll(lists...)
	}
}
