package topk

// Merge kernels for the flat-compiled plan executor (plan.Runner). A "run"
// is the raw form of a List: a descending-sorted []Entry slice with unique
// IDs, living inside a dense slab segment instead of behind a *List. The
// kernels reproduce List.Push / Merge semantics exactly — top-k by
// (Score desc, ID asc), at most one entry per ID with the better one kept —
// but operate on slices with explicit lengths, so the hot loop touches no
// pointers, interfaces, or closures. Property and fuzz tests pin kernel
// output equal to Merge on arbitrary inputs.
//
// All kernels require their input runs to satisfy the List invariant
// (sorted descending by Entry.Less, IDs unique within a run); runs produced
// by the kernels satisfy it in turn.

// PushRun inserts e into the run run[:n] with capacity k, keeping the top k
// by (Score desc, ID asc) and at most one entry per ID, and returns the new
// length. It is the kernel form of List.Push: an O(n) de-duplication scan
// followed by an O(n) shift insertion, which beats heap bookkeeping for the
// small k of ad slots.
func PushRun(run []Entry, n, k int, e Entry) int {
	for i := 0; i < n; i++ {
		if run[i].ID != e.ID {
			continue
		}
		if !e.Less(run[i]) {
			return n // existing entry is at least as good
		}
		// e improves on run[i]: slide the gap up to e's sorted position,
		// which is at or before i since e outranks the old entry.
		j := i
		for j > 0 && e.Less(run[j-1]) {
			j--
		}
		copy(run[j+1:i+1], run[j:i])
		run[j] = e
		return n
	}
	if n == k {
		if !e.Less(run[n-1]) {
			return n // full, and e does not beat the worst
		}
		n--
	}
	j := n
	for j > 0 && e.Less(run[j-1]) {
		j--
	}
	copy(run[j+1:n+1], run[j:n])
	run[j] = e
	return n + 1
}

// MergeRuns writes the top-k merge a ⊕ b into dst and returns the result
// length. It is a single two-pointer pass over the sorted inputs; because
// entries are emitted in global rank order, a duplicate ID is always
// encountered after its better copy, so de-duplication is a membership scan
// over the ≤ k entries already emitted with no replacement case. dst must
// have capacity ≥ k and must not alias a or b.
func MergeRuns(dst []Entry, k int, a, b []Entry) int {
	n, i, j := 0, 0, 0
	for n < k && (i < len(a) || j < len(b)) {
		var e Entry
		switch {
		case i == len(a):
			e = b[j]
			j++
		case j == len(b):
			e = a[i]
			i++
		case a[i].Less(b[j]):
			e = a[i]
			i++
		default:
			e = b[j]
			j++
		}
		dup := false
		for t := 0; t < n; t++ {
			if dst[t].ID == e.ID {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		dst[n] = e
		n++
	}
	return n
}

// FoldRun merges src into run[:n] in place and returns the new length —
// the n-way kernel's inner step: a fold of PushRun over src with an early
// exit. Once the run is full, the first src entry that fails to beat the
// run's worst ends the fold, because src is sorted so no later entry can
// enter the run or improve a duplicate either.
func FoldRun(run []Entry, n, k int, src []Entry) int {
	for _, e := range src {
		if n == k && !e.Less(run[n-1]) {
			break
		}
		n = PushRun(run, n, k, e)
	}
	return n
}
