package topk

import (
	"math/rand"
	"testing"
)

// randRun builds a valid run (descending sorted, unique IDs) of up to maxLen
// entries drawn from a small ID/score universe so ties and shared IDs across
// runs are frequent.
func randRun(rng *rand.Rand, maxLen, idSpan, scoreSpan int) []Entry {
	l := New(maxLen)
	n := rng.Intn(maxLen + 1)
	for i := 0; i < n; i++ {
		l.Push(Entry{ID: rng.Intn(idSpan), Score: float64(rng.Intn(scoreSpan))})
	}
	return l.Entries()
}

// checkRun fails the test if run violates the List invariant: strictly
// descending by Entry.Less with unique IDs.
func checkRun(t *testing.T, label string, run []Entry) {
	t.Helper()
	seen := map[int]bool{}
	for i, e := range run {
		if seen[e.ID] {
			t.Fatalf("%s: duplicate ID %d in %v", label, e.ID, run)
		}
		seen[e.ID] = true
		if i > 0 && !run[i-1].Less(e) {
			t.Fatalf("%s: not descending at %d in %v", label, i, run)
		}
	}
}

// runFromList converts a run into a *List for reference comparison.
func listFromRun(k int, run []Entry) *List {
	l := New(k)
	for _, e := range run {
		l.Push(e)
	}
	return l
}

// equalRuns compares a kernel-produced run with the reference list.
func equalRuns(run []Entry, l *List) bool {
	if len(run) != l.Len() {
		return false
	}
	for i, e := range run {
		if l.At(i) != e {
			return false
		}
	}
	return true
}

// TestPushRunMatchesListPush drives PushRun and List.Push with the same
// random entry stream — including duplicate IDs with improved and worsened
// scores, exact ties, and k=1 — and requires identical runs at every step.
func TestPushRunMatchesListPush(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		k := 1 + rng.Intn(8)
		ref := New(k)
		run := make([]Entry, k)
		n := 0
		for step := 0; step < 40; step++ {
			e := Entry{ID: rng.Intn(10), Score: float64(rng.Intn(6))}
			ref.Push(e)
			n = PushRun(run, n, k, e)
			if !equalRuns(run[:n], ref) {
				t.Fatalf("trial %d step %d k=%d: push %+v gave %v, want %v",
					trial, step, k, e, run[:n], ref)
			}
			checkRun(t, "PushRun", run[:n])
		}
	}
}

// TestMergeRunsMatchesMerge is the kernel equivalence property: for random
// valid runs (ties, shared IDs, empty sides, k=1), MergeRuns must equal
// topk.Merge on the corresponding lists.
func TestMergeRunsMatchesMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dst := make([]Entry, 16)
	for trial := 0; trial < 5000; trial++ {
		k := 1 + rng.Intn(8)
		a := randRun(rng, k, 12, 5)
		b := randRun(rng, k, 12, 5)
		want := Merge(listFromRun(k, a), listFromRun(k, b))
		n := MergeRuns(dst, k, a, b)
		if !equalRuns(dst[:n], want) {
			t.Fatalf("trial %d k=%d: MergeRuns(%v, %v) = %v, want %v",
				trial, k, a, b, dst[:n], want)
		}
		checkRun(t, "MergeRuns", dst[:n])
	}
}

// TestFoldRunMatchesMerge checks the n-ary fold kernel: folding several runs
// into an accumulator must equal the left fold of topk.Merge, regardless of
// early exits.
func TestFoldRunMatchesMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3000; trial++ {
		k := 1 + rng.Intn(8)
		ref := New(k)
		run := make([]Entry, k)
		n := 0
		for pieces := rng.Intn(5); pieces >= 0; pieces-- {
			src := randRun(rng, k, 12, 5)
			ref = Merge(ref, listFromRun(k, src))
			n = FoldRun(run, n, k, src)
			if !equalRuns(run[:n], ref) {
				t.Fatalf("trial %d k=%d: FoldRun(%v) = %v, want %v",
					trial, k, src, run[:n], ref)
			}
			checkRun(t, "FoldRun", run[:n])
		}
	}
}

// TestKernelEdgeCases pins the boundary behaviours the random trials may
// visit rarely: both runs empty, one empty, k=1 ties, and duplicate IDs
// where the second copy improves on the first.
func TestKernelEdgeCases(t *testing.T) {
	dst := make([]Entry, 4)
	if n := MergeRuns(dst, 3, nil, nil); n != 0 {
		t.Fatalf("merge of empties: %d entries", n)
	}
	a := []Entry{{ID: 2, Score: 5}, {ID: 1, Score: 3}}
	if n := MergeRuns(dst, 3, a, nil); n != 2 || dst[0] != a[0] || dst[1] != a[1] {
		t.Fatalf("merge with empty right: %v", dst[:n])
	}
	// k=1 with an exact tie: lower ID wins.
	if n := MergeRuns(dst, 1, []Entry{{ID: 7, Score: 2}}, []Entry{{ID: 3, Score: 2}}); n != 1 || dst[0] != (Entry{ID: 3, Score: 2}) {
		t.Fatalf("k=1 tie: %v", dst[:1])
	}
	// Duplicate ID across sides: the better copy must win regardless of side.
	n := MergeRuns(dst, 3, []Entry{{ID: 5, Score: 9}}, []Entry{{ID: 5, Score: 4}})
	if n != 1 || dst[0] != (Entry{ID: 5, Score: 9}) {
		t.Fatalf("cross-side duplicate: %v", dst[:n])
	}
	// PushRun improving a mid-run duplicate must re-sort it upward.
	run := []Entry{{ID: 1, Score: 9}, {ID: 2, Score: 5}, {ID: 3, Score: 1}}
	if n := PushRun(run, 3, 3, Entry{ID: 3, Score: 7}); n != 3 ||
		run[0] != (Entry{ID: 1, Score: 9}) || run[1] != (Entry{ID: 3, Score: 7}) || run[2] != (Entry{ID: 2, Score: 5}) {
		t.Fatalf("improving duplicate: %v", run[:n])
	}
	// PushRun must ignore a worse duplicate even when the run is not full.
	if n := PushRun(run, 3, 4, Entry{ID: 1, Score: 2}); n != 3 {
		t.Fatalf("worse duplicate grew run: %v", run[:n])
	}
}

// decodeRuns turns fuzz bytes into two valid runs plus a k, exercising the
// kernels on adversarial shapes while honoring their input contract.
func decodeRuns(data []byte) (k int, a, b []Entry) {
	if len(data) == 0 {
		return 1, nil, nil
	}
	k = 1 + int(data[0]%8)
	data = data[1:]
	la, lb := New(k), New(k)
	for i := 0; i+1 < len(data); i += 2 {
		e := Entry{ID: int(data[i] % 16), Score: float64(data[i+1] % 8)}
		if i%4 == 0 {
			la.Push(e)
		} else {
			lb.Push(e)
		}
	}
	return k, la.Entries(), lb.Entries()
}

// FuzzMergeRuns fuzzes the two-pointer kernel against the reference Merge.
func FuzzMergeRuns(f *testing.F) {
	f.Add([]byte{3, 1, 5, 2, 5, 1, 7, 3, 3})
	f.Add([]byte{1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		k, a, b := decodeRuns(data)
		want := Merge(listFromRun(k, a), listFromRun(k, b))
		dst := make([]Entry, k)
		n := MergeRuns(dst, k, a, b)
		if !equalRuns(dst[:n], want) {
			t.Fatalf("MergeRuns(k=%d, %v, %v) = %v, want %v", k, a, b, dst[:n], want)
		}
	})
}

// FuzzFoldRun fuzzes the fold kernel (with its early exit) against Merge.
func FuzzFoldRun(f *testing.F) {
	f.Add([]byte{2, 9, 4, 9, 4, 1, 1, 2, 2})
	f.Add([]byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		k, a, b := decodeRuns(data)
		want := Merge(listFromRun(k, a), listFromRun(k, b))
		run := make([]Entry, k)
		n := FoldRun(run, 0, k, a)
		n = FoldRun(run, n, k, b)
		if !equalRuns(run[:n], want) {
			t.Fatalf("FoldRun(k=%d, %v, %v) = %v, want %v", k, a, b, run[:n], want)
		}
	})
}
