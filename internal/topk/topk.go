// Package topk implements bounded top-k lists and the binary top-k merge
// operator that Section II of the paper abstracts as ⊕.
//
// A k-list holds at most k (ID, Score) entries in descending score order.
// Merge takes two k-lists and returns the top k of their union, de-duplicated
// by ID. With de-duplication the operator is associative, commutative, and
// idempotent, and the empty list is its identity — i.e. it forms a
// semilattice with identity, satisfying axioms A1–A4 that the shared
// aggregation planner relies on.
package topk

import (
	"fmt"
	"sort"
	"strings"
)

// Entry is a scored item in a k-list. In the auction setting ID is an
// advertiser index and Score is the advertiser's effective bid b_i·c_i.
type Entry struct {
	ID    int
	Score float64
}

// Less orders entries by descending score, breaking ties by ascending ID so
// every aggregation result is deterministic.
func (e Entry) Less(o Entry) bool {
	if e.Score != o.Score {
		return e.Score > o.Score
	}
	return e.ID < o.ID
}

// List is a k-list: at most K entries, sorted descending by (Score, -ID).
// The zero value is unusable; create lists with New.
type List struct {
	k       int
	entries []Entry
}

// New returns an empty k-list with capacity k. k must be positive.
func New(k int) *List {
	if k <= 0 {
		panic(fmt.Sprintf("topk: non-positive k %d", k))
	}
	return &List{k: k, entries: make([]Entry, 0, k)}
}

// FromEntries builds a k-list containing the top k of the given entries,
// de-duplicated by ID (keeping the highest score per ID).
func FromEntries(k int, entries ...Entry) *List {
	l := New(k)
	for _, e := range entries {
		l.Push(e)
	}
	return l
}

// K returns the list's capacity.
func (l *List) K() int { return l.k }

// Len returns the number of entries currently held.
func (l *List) Len() int { return len(l.entries) }

// Entries returns the held entries in descending score order. The returned
// slice is a copy; mutating it does not affect the list.
func (l *List) Entries() []Entry {
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// At returns the i-th best entry (0-based).
func (l *List) At(i int) Entry { return l.entries[i] }

// Min returns the lowest-ranked entry currently held and whether the list is
// nonempty. When the list is full, Min is the threshold a new entry must beat.
func (l *List) Min() (Entry, bool) {
	if len(l.entries) == 0 {
		return Entry{}, false
	}
	return l.entries[len(l.entries)-1], true
}

// IDs returns the held IDs in rank order.
func (l *List) IDs() []int {
	out := make([]int, len(l.entries))
	for i, e := range l.entries {
		out[i] = e.ID
	}
	return out
}

// Push inserts e, keeping only the top k by (Score, -ID) and at most one
// entry per ID (the better one wins). It reports whether the list changed.
//
// Insertion is O(k) by shifting; for the small k of ad slots (4–20) this
// beats heap bookkeeping and keeps the list always sorted for merging.
func (l *List) Push(e Entry) bool {
	// De-duplicate by ID first.
	for i, old := range l.entries {
		if old.ID == e.ID {
			if !e.Less(old) {
				return false // existing entry is at least as good
			}
			// Replace and re-position the improved entry.
			l.entries = append(l.entries[:i], l.entries[i+1:]...)
			l.insert(e)
			return true
		}
	}
	if len(l.entries) == l.k {
		if worst := l.entries[l.k-1]; !e.Less(worst) {
			return false
		}
		l.entries = l.entries[:l.k-1]
	}
	l.insert(e)
	return true
}

func (l *List) insert(e Entry) {
	i := sort.Search(len(l.entries), func(i int) bool { return e.Less(l.entries[i]) })
	l.entries = append(l.entries, Entry{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = e
}

// Clone returns an independent copy of the list.
func (l *List) Clone() *List {
	c := &List{k: l.k, entries: make([]Entry, len(l.entries), l.k)}
	copy(c.entries, l.entries)
	return c
}

// Equal reports whether two lists hold identical entries in the same order
// and have equal capacity.
func (l *List) Equal(o *List) bool {
	if l.k != o.k || len(l.entries) != len(o.entries) {
		return false
	}
	for i := range l.entries {
		if l.entries[i] != o.entries[i] {
			return false
		}
	}
	return true
}

// String renders the list as "[id:score id:score ...]".
func (l *List) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, e := range l.entries {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%g", e.ID, e.Score)
	}
	b.WriteByte(']')
	return b.String()
}

// Merge returns the top-k aggregation a ⊕ b: a new k-list holding the top k
// of the union of a and b, de-duplicated by ID. Both inputs must share the
// same k; neither is modified. This is the paper's binary aggregation
// primitive for shared winner determination.
func Merge(a, b *List) *List {
	if a.k != b.k {
		panic(fmt.Sprintf("topk: merge of lists with k=%d and k=%d", a.k, b.k))
	}
	out := New(a.k)
	i, j := 0, 0
	// Standard two-way merge over sorted inputs; Push de-duplicates IDs.
	for out.Len() < a.k && (i < len(a.entries) || j < len(b.entries)) {
		switch {
		case i == len(a.entries):
			out.Push(b.entries[j])
			j++
		case j == len(b.entries):
			out.Push(a.entries[i])
			i++
		case a.entries[i].Less(b.entries[j]):
			out.Push(a.entries[i])
			i++
		default:
			out.Push(b.entries[j])
			j++
		}
	}
	return out
}

// MergeAll folds Merge over the given lists, returning the top k of all of
// them. It panics if lists is empty.
func MergeAll(lists ...*List) *List {
	if len(lists) == 0 {
		panic("topk: MergeAll of no lists")
	}
	acc := lists[0].Clone()
	for _, l := range lists[1:] {
		acc = Merge(acc, l)
	}
	return acc
}
