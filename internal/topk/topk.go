// Package topk implements bounded top-k lists and the binary top-k merge
// operator that Section II of the paper abstracts as ⊕.
//
// A k-list holds at most k (ID, Score) entries in descending score order.
// Merge takes two k-lists and returns the top k of their union, de-duplicated
// by ID. With de-duplication the operator is associative, commutative, and
// idempotent, and the empty list is its identity — i.e. it forms a
// semilattice with identity, satisfying axioms A1–A4 that the shared
// aggregation planner relies on.
package topk

import (
	"fmt"
	"sort"
	"strings"
)

// Entry is a scored item in a k-list. In the auction setting ID is an
// advertiser index and Score is the advertiser's effective bid b_i·c_i.
type Entry struct {
	ID    int
	Score float64
}

// Less orders entries by descending score, breaking ties by ascending ID so
// every aggregation result is deterministic.
func (e Entry) Less(o Entry) bool {
	if e.Score != o.Score {
		return e.Score > o.Score
	}
	return e.ID < o.ID
}

// List is a k-list: at most K entries, sorted descending by (Score, -ID).
// The zero value is unusable; create lists with New.
type List struct {
	k       int
	entries []Entry
	// minID/maxID bound the IDs of every entry pushed since the last Reset
	// (monotone: eviction does not narrow them). Merge uses them to prove
	// two lists share no ID and skip per-entry de-duplication.
	minID, maxID int
}

// New returns an empty k-list with capacity k. k must be positive.
func New(k int) *List {
	if k <= 0 {
		panic(fmt.Sprintf("topk: non-positive k %d", k))
	}
	l := &List{k: k, entries: make([]Entry, 0, k)}
	l.resetBounds()
	return l
}

func (l *List) resetBounds() {
	l.minID, l.maxID = int(^uint(0)>>1), -int(^uint(0)>>1)-1
}

// Reset empties the list in place, retaining its capacity for reuse. The
// slab executor and engine scratch buffers rely on this to run steady-state
// rounds without allocating.
func (l *List) Reset() {
	l.entries = l.entries[:0]
	l.resetBounds()
}

// FromEntries builds a k-list containing the top k of the given entries,
// de-duplicated by ID (keeping the highest score per ID).
func FromEntries(k int, entries ...Entry) *List {
	l := New(k)
	for _, e := range entries {
		l.Push(e)
	}
	return l
}

// K returns the list's capacity.
func (l *List) K() int { return l.k }

// Len returns the number of entries currently held.
func (l *List) Len() int { return len(l.entries) }

// Entries returns the held entries in descending score order. The returned
// slice is a copy; mutating it does not affect the list.
func (l *List) Entries() []Entry {
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// At returns the i-th best entry (0-based).
func (l *List) At(i int) Entry { return l.entries[i] }

// Each calls fn on every entry in descending rank order, stopping early if
// fn returns false. Unlike Entries it performs no copy, so hot paths can
// walk a list without allocating.
func (l *List) Each(fn func(Entry) bool) {
	for _, e := range l.entries {
		if !fn(e) {
			return
		}
	}
}

// Min returns the lowest-ranked entry currently held and whether the list is
// nonempty. When the list is full, Min is the threshold a new entry must beat.
func (l *List) Min() (Entry, bool) {
	if len(l.entries) == 0 {
		return Entry{}, false
	}
	return l.entries[len(l.entries)-1], true
}

// IDs returns the held IDs in rank order.
func (l *List) IDs() []int {
	out := make([]int, len(l.entries))
	for i, e := range l.entries {
		out[i] = e.ID
	}
	return out
}

// Push inserts e, keeping only the top k by (Score, -ID) and at most one
// entry per ID (the better one wins). It reports whether the list changed.
//
// Insertion is O(k) by shifting; for the small k of ad slots (4–20) this
// beats heap bookkeeping and keeps the list always sorted for merging.
func (l *List) Push(e Entry) bool {
	// De-duplicate by ID first.
	for i, old := range l.entries {
		if old.ID == e.ID {
			if !e.Less(old) {
				return false // existing entry is at least as good
			}
			// Replace and re-position the improved entry.
			l.entries = append(l.entries[:i], l.entries[i+1:]...)
			l.insert(e)
			return true
		}
	}
	if len(l.entries) == l.k {
		if worst := l.entries[l.k-1]; !e.Less(worst) {
			return false
		}
		l.entries = l.entries[:l.k-1]
	}
	l.insert(e)
	return true
}

func (l *List) insert(e Entry) {
	i := sort.Search(len(l.entries), func(i int) bool { return e.Less(l.entries[i]) })
	l.entries = append(l.entries, Entry{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = e
	l.noteID(e.ID)
}

func (l *List) noteID(id int) {
	if id < l.minID {
		l.minID = id
	}
	if id > l.maxID {
		l.maxID = id
	}
}

// Clone returns an independent copy of the list.
func (l *List) Clone() *List {
	c := &List{k: l.k, entries: make([]Entry, len(l.entries), l.k), minID: l.minID, maxID: l.maxID}
	copy(c.entries, l.entries)
	return c
}

// Equal reports whether two lists hold identical entries in the same order
// and have equal capacity.
func (l *List) Equal(o *List) bool {
	if l.k != o.k || len(l.entries) != len(o.entries) {
		return false
	}
	for i := range l.entries {
		if l.entries[i] != o.entries[i] {
			return false
		}
	}
	return true
}

// String renders the list as "[id:score id:score ...]".
func (l *List) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, e := range l.entries {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%g", e.ID, e.Score)
	}
	b.WriteByte(']')
	return b.String()
}

// Merge returns the top-k aggregation a ⊕ b: a new k-list holding the top k
// of the union of a and b, de-duplicated by ID. Both inputs must share the
// same k; neither is modified. This is the paper's binary aggregation
// primitive for shared winner determination.
func Merge(a, b *List) *List {
	if a.k != b.k {
		panic(fmt.Sprintf("topk: merge of lists with k=%d and k=%d", a.k, b.k))
	}
	return MergeInto(New(a.k), a, b)
}

// copyFrom makes dst an exact copy of src without allocating (both share k).
func (l *List) copyFrom(src *List) {
	l.entries = l.entries[:len(src.entries)]
	copy(l.entries, src.entries)
	l.minID, l.maxID = src.minID, src.maxID
}

// MergeInto computes a ⊕ b into dst, reusing dst's storage, and returns dst.
// dst is reset first and must be distinct from both inputs; all three lists
// must share the same k. Two fast paths keep the common plan-execution cases
// cheap: an empty side is answered by copying the other, and inputs whose ID
// ranges cannot overlap (frequent when fragments partition the advertisers)
// merge without Push's O(k) de-duplication scan.
func MergeInto(dst, a, b *List) *List {
	if a.k != b.k || dst.k != a.k {
		panic(fmt.Sprintf("topk: merge of lists with k=%d, %d into k=%d", a.k, b.k, dst.k))
	}
	if dst == a || dst == b {
		panic("topk: MergeInto destination aliases an input")
	}
	dst.Reset()
	switch {
	case len(a.entries) == 0:
		dst.copyFrom(b)
		return dst
	case len(b.entries) == 0:
		dst.copyFrom(a)
		return dst
	}
	i, j := 0, 0
	if a.maxID < b.minID || b.maxID < a.minID {
		// Provably ID-disjoint: a pure two-way merge, no dedup scans.
		for len(dst.entries) < dst.k && (i < len(a.entries) || j < len(b.entries)) {
			var e Entry
			switch {
			case i == len(a.entries):
				e = b.entries[j]
				j++
			case j == len(b.entries):
				e = a.entries[i]
				i++
			case a.entries[i].Less(b.entries[j]):
				e = a.entries[i]
				i++
			default:
				e = b.entries[j]
				j++
			}
			dst.entries = append(dst.entries, e)
			dst.noteID(e.ID)
		}
		return dst
	}
	// Standard two-way merge over sorted inputs; Push de-duplicates IDs.
	for len(dst.entries) < dst.k && (i < len(a.entries) || j < len(b.entries)) {
		switch {
		case i == len(a.entries):
			dst.Push(b.entries[j])
			j++
		case j == len(b.entries):
			dst.Push(a.entries[i])
			i++
		case a.entries[i].Less(b.entries[j]):
			dst.Push(a.entries[i])
			i++
		default:
			dst.Push(b.entries[j])
			j++
		}
	}
	return dst
}

// MergeAll folds Merge over the given lists, returning the top k of all of
// them. It panics if lists is empty. The fold ping-pongs between two
// accumulators rather than allocating a fresh list per element.
func MergeAll(lists ...*List) *List {
	if len(lists) == 0 {
		panic("topk: MergeAll of no lists")
	}
	if len(lists) == 1 {
		return lists[0].Clone()
	}
	acc := Merge(lists[0], lists[1])
	if len(lists) == 2 {
		return acc
	}
	spare := New(acc.k)
	for _, l := range lists[2:] {
		MergeInto(spare, acc, l)
		acc, spare = spare, acc
	}
	return acc
}
