package topk

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	New(0)
}

func TestPushKeepsTopK(t *testing.T) {
	l := New(3)
	for _, e := range []Entry{{1, 5}, {2, 9}, {3, 1}, {4, 7}, {5, 3}} {
		l.Push(e)
	}
	if got := l.IDs(); !reflect.DeepEqual(got, []int{2, 4, 1}) {
		t.Fatalf("IDs = %v, want [2 4 1]", got)
	}
}

func TestPushRejectsWorseThanMin(t *testing.T) {
	l := FromEntries(2, Entry{1, 10}, Entry{2, 8})
	if l.Push(Entry{3, 7}) {
		t.Fatal("Push should reject entry below full list's min")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestPushDeduplicatesByID(t *testing.T) {
	l := New(3)
	l.Push(Entry{7, 4})
	if l.Push(Entry{7, 2}) {
		t.Fatal("worse duplicate should not change list")
	}
	if !l.Push(Entry{7, 9}) {
		t.Fatal("better duplicate should replace")
	}
	if l.Len() != 1 || l.At(0) != (Entry{7, 9}) {
		t.Fatalf("list = %v", l.Entries())
	}
}

func TestTieBreakByID(t *testing.T) {
	l := New(2)
	l.Push(Entry{5, 1})
	l.Push(Entry{3, 1})
	l.Push(Entry{9, 1})
	if got := l.IDs(); !reflect.DeepEqual(got, []int{3, 5}) {
		t.Fatalf("IDs = %v, want [3 5] (ties break by ascending ID)", got)
	}
}

func TestMinAndEntriesCopy(t *testing.T) {
	l := FromEntries(3, Entry{1, 5}, Entry{2, 3})
	m, ok := l.Min()
	if !ok || m != (Entry{2, 3}) {
		t.Fatalf("Min = %v %v", m, ok)
	}
	es := l.Entries()
	es[0] = Entry{99, 99}
	if l.At(0).ID == 99 {
		t.Fatal("Entries must return a copy")
	}
	if _, ok := New(2).Min(); ok {
		t.Fatal("Min of empty list should report !ok")
	}
}

func TestMergeBasic(t *testing.T) {
	a := FromEntries(2, Entry{1, 10}, Entry{2, 8})
	b := FromEntries(2, Entry{3, 9}, Entry{4, 1})
	m := Merge(a, b)
	if got := m.IDs(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("Merge IDs = %v, want [1 3]", got)
	}
	// Inputs untouched.
	if a.Len() != 2 || b.Len() != 2 {
		t.Fatal("Merge must not modify inputs")
	}
}

func TestMergeDuplicateIDs(t *testing.T) {
	a := FromEntries(3, Entry{1, 10}, Entry{2, 8})
	b := FromEntries(3, Entry{1, 10}, Entry{3, 9})
	m := Merge(a, b)
	if got := m.IDs(); !reflect.DeepEqual(got, []int{1, 3, 2}) {
		t.Fatalf("Merge IDs = %v, want [1 3 2]", got)
	}
}

func TestMergeMismatchedKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched k")
		}
	}()
	Merge(New(2), New(3))
}

func TestMergeAll(t *testing.T) {
	lists := []*List{
		FromEntries(2, Entry{1, 1}),
		FromEntries(2, Entry{2, 5}),
		FromEntries(2, Entry{3, 3}),
	}
	if got := MergeAll(lists...).IDs(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("MergeAll = %v", got)
	}
}

func TestStringAndClone(t *testing.T) {
	l := FromEntries(2, Entry{1, 2.5}, Entry{2, 1})
	if got := l.String(); got != "[1:2.5 2:1]" {
		t.Fatalf("String = %q", got)
	}
	c := l.Clone()
	c.Push(Entry{9, 100})
	if l.At(0).ID == 9 {
		t.Fatal("mutating clone affected original")
	}
	if !l.Equal(l.Clone()) {
		t.Fatal("clone should be Equal")
	}
	if l.Equal(New(2)) {
		t.Fatal("different lists reported Equal")
	}
}

// randomList builds a random k-list with IDs drawn from [0, idSpace).
func randomList(rng *rand.Rand, k, idSpace int) *List {
	l := New(k)
	n := rng.Intn(2 * k)
	for i := 0; i < n; i++ {
		l.Push(Entry{ID: rng.Intn(idSpace), Score: float64(rng.Intn(50))})
	}
	return l
}

// TestQuickSemilatticeAxioms checks that Merge satisfies the paper's axioms
// A1 (associativity), A3 (idempotence), A4 (commutativity) and that the empty
// list is an identity (A2). These are exactly the properties the shared
// aggregation planner exploits.
func TestQuickSemilatticeAxioms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		a := randomList(rng, k, 30)
		b := randomList(rng, k, 30)
		c := randomList(rng, k, 30)
		if !Merge(a, b).Equal(Merge(b, a)) { // A4
			return false
		}
		if !Merge(Merge(a, b), c).Equal(Merge(a, Merge(b, c))) { // A1
			return false
		}
		if !Merge(a, a).Equal(a) { // A3
			return false
		}
		return Merge(a, New(k)).Equal(a) // A2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMergeMatchesSort checks Merge against a reference: sort the union
// of the best score per ID and take the top k.
func TestQuickMergeMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		a := randomList(rng, k, 30)
		b := randomList(rng, k, 30)

		best := map[int]float64{}
		for _, e := range append(a.Entries(), b.Entries()...) {
			if v, ok := best[e.ID]; !ok || e.Score > v {
				best[e.ID] = e.Score
			}
		}
		var all []Entry
		for id, s := range best {
			all = append(all, Entry{id, s})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
		if len(all) > k {
			all = all[:k]
		}
		got := Merge(a, b).Entries()
		if len(got) != len(all) {
			return false
		}
		for i := range got {
			if got[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMergeIntoMatchesMerge: the in-place merge must be bit-identical
// to the allocating one, including on empty-side and ID-disjoint inputs that
// take the fast paths.
func TestQuickMergeIntoMatchesMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		mk := func() *List {
			switch rng.Intn(4) {
			case 0:
				return New(k) // empty side
			case 1: // low ID range (disjoint from case 2)
				l := New(k)
				for i := rng.Intn(2 * k); i > 0; i-- {
					l.Push(Entry{ID: rng.Intn(100), Score: float64(rng.Intn(50))})
				}
				return l
			case 2: // high ID range
				l := New(k)
				for i := rng.Intn(2 * k); i > 0; i-- {
					l.Push(Entry{ID: 1000 + rng.Intn(100), Score: float64(rng.Intn(50))})
				}
				return l
			default:
				return randomList(rng, k, 30)
			}
		}
		a, b := mk(), mk()
		want := Merge(a, b)
		dst := New(k)
		// Pre-dirty dst to prove Reset semantics.
		dst.Push(Entry{ID: 9999, Score: 1e9})
		if !MergeInto(dst, a, b).Equal(want) {
			return false
		}
		// Reuse the same dst again.
		return MergeInto(dst, b, a).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeIntoAliasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when dst aliases an input")
		}
	}()
	l := FromEntries(2, Entry{1, 1})
	MergeInto(l, l, New(2))
}

func TestResetReuse(t *testing.T) {
	l := FromEntries(3, Entry{1, 5}, Entry{2, 3})
	l.Reset()
	if l.Len() != 0 {
		t.Fatalf("Len after Reset = %d", l.Len())
	}
	l.Push(Entry{7, 1})
	if got := l.IDs(); !reflect.DeepEqual(got, []int{7}) {
		t.Fatalf("IDs after reuse = %v", got)
	}
	// The disjointness bounds must reset too: before the fix a stale maxID
	// could falsely prove disjointness and skip de-duplication.
	a := New(3)
	a.Push(Entry{50, 9})
	a.Reset()
	a.Push(Entry{1, 9})
	b := FromEntries(3, Entry{1, 4}, Entry{2, 2})
	if got := Merge(a, b).IDs(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("merge after Reset = %v, want [1 2]", got)
	}
}

func TestEach(t *testing.T) {
	l := FromEntries(3, Entry{1, 5}, Entry{2, 3}, Entry{3, 1})
	var ids []int
	l.Each(func(e Entry) bool {
		ids = append(ids, e.ID)
		return len(ids) < 2
	})
	if !reflect.DeepEqual(ids, []int{1, 2}) {
		t.Fatalf("Each visited %v, want [1 2] (early stop)", ids)
	}
}

func TestMergeAllSingleCloneIsIndependent(t *testing.T) {
	l := FromEntries(2, Entry{1, 1})
	m := MergeAll(l)
	m.Push(Entry{2, 9})
	if l.Len() != 1 {
		t.Fatal("MergeAll of one list must return an independent copy")
	}
}

func BenchmarkPush(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	entries := make([]Entry, 1024)
	for i := range entries {
		entries[i] = Entry{ID: i, Score: rng.Float64()}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := New(10)
		for _, e := range entries {
			l.Push(e)
		}
	}
}

func BenchmarkMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomList(rng, 10, 10000)
	y := randomList(rng, 10, 10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Merge(x, y)
	}
}
