package workload

import (
	"math"
	"math/rand"
)

// Click is a realized click on a previously displayed ad.
type Click struct {
	Advertiser int
	Price      float64 // the per-click price fixed at auction time
	Displayed  int     // round the ad was shown
	Round      int     // round the click arrived
}

// pendingAd is a displayed ad whose click outcome was pre-drawn at display
// time: clickRound < 0 means it will never be clicked.
type pendingAd struct {
	advertiser int
	price      float64
	ctr0       float64
	displayed  int
	clickRound int
}

// OutcomeFunc decides a displayed ad's click fate deterministically:
// whether it is clicked and, if so, after how many rounds. It must be a
// pure function of its arguments so that runs that display the same ads
// (e.g. a sharded and a single-engine run over the same workload) see the
// same clicks regardless of how displays are distributed over simulators.
// A returned delay < 1 or ≥ the simulator's horizon means no click: delays
// of 0 cannot be observed (the display round's Advance has already run),
// and the simulator never delivers past its horizon.
type OutcomeFunc func(advertiser int, price, ctr float64, round int) (clicked bool, delay int)

// ClickSim simulates delayed clicks: a displayed ad with click-through rate
// ctr is eventually clicked with probability ctr; the delay is geometric
// with per-round continuation (1 − Hazard), truncated at Horizon rounds.
// Consequently the probability that an ad of age a is still going to be
// clicked is ctr·(1−Hazard)^a for a < Horizon and 0 beyond — exactly the
// decaying outstanding-ad CTR Section IV models (see RemainingCTR).
type ClickSim struct {
	// Hazard is the per-round click probability given the ad will be
	// clicked and hasn't been yet.
	Hazard float64
	// Horizon is the age (in rounds) beyond which a click never arrives.
	Horizon int

	rng     *rand.Rand
	outcome OutcomeFunc
	pending []pendingAd
	// clickBuf backs Advance's result so steady-state rounds do not
	// allocate; it is overwritten by the next Advance.
	clickBuf []Click
}

// NewClickSim creates a simulator. hazard must be in (0, 1]; horizon ≥ 1.
func NewClickSim(rng *rand.Rand, hazard float64, horizon int) *ClickSim {
	if hazard <= 0 || hazard > 1 || horizon < 1 {
		panic("workload: invalid click simulator parameters")
	}
	return &ClickSim{Hazard: hazard, Horizon: horizon, rng: rng}
}

// SetOutcome replaces the simulator's random draws with a deterministic
// outcome function (nil restores random draws). With an outcome set,
// Display consumes nothing from the random stream.
func (cs *ClickSim) SetOutcome(f OutcomeFunc) { cs.outcome = f }

// Display registers a shown ad: the advertiser, the price a click will
// cost, the click-through rate of (advertiser, slot), and the display
// round. The click outcome and delay are drawn immediately (but revealed
// only as rounds advance).
func (cs *ClickSim) Display(advertiser int, price, ctr float64, round int) {
	p := pendingAd{advertiser: advertiser, price: price, ctr0: ctr, displayed: round, clickRound: -1}
	if cs.outcome != nil {
		if clicked, delay := cs.outcome(advertiser, price, ctr, round); clicked && delay >= 1 && delay < cs.Horizon {
			p.clickRound = round + delay
		}
	} else if cs.rng.Float64() < ctr {
		delay := 0
		for cs.rng.Float64() >= cs.Hazard {
			delay++
		}
		if delay < cs.Horizon {
			p.clickRound = round + delay
		}
	}
	cs.pending = append(cs.pending, p)
}

// Advance reveals the clicks that arrive in the given round and drops ads
// past the horizon. Rounds must be advanced in non-decreasing order. The
// returned slice is reused by the next Advance call; callers that retain
// clicks across rounds must copy them.
func (cs *ClickSim) Advance(round int) []Click {
	clicks := cs.clickBuf[:0]
	keep := cs.pending[:0]
	for _, p := range cs.pending {
		switch {
		case p.clickRound == round:
			clicks = append(clicks, Click{
				Advertiser: p.advertiser, Price: p.price,
				Displayed: p.displayed, Round: round,
			})
		case p.clickRound > round:
			keep = append(keep, p)
		case p.clickRound < 0 && round-p.displayed < cs.Horizon:
			keep = append(keep, p) // still outstanding (will never click,
			// but the engine cannot know that)
		}
	}
	cs.pending = keep
	cs.clickBuf = clicks
	return clicks
}

// Outstanding returns, for budget throttling, every pending ad of the given
// advertiser as (price, remaining click probability at the current round).
func (cs *ClickSim) Outstanding(advertiser, round int) (prices, ctrs []float64) {
	return cs.AppendOutstanding(nil, nil, advertiser, round)
}

// AppendOutstanding is Outstanding appending into caller-owned buffers, so
// the per-round throttling loop can reuse its scratch instead of allocating
// per advertiser.
func (cs *ClickSim) AppendOutstanding(prices, ctrs []float64, advertiser, round int) ([]float64, []float64) {
	for _, p := range cs.pending {
		if p.advertiser != advertiser {
			continue
		}
		age := round - p.displayed
		rem := RemainingCTR(p.ctr0, age, cs.Hazard, cs.Horizon)
		if rem <= 0 || p.price <= 0 {
			continue
		}
		prices = append(prices, p.price)
		ctrs = append(ctrs, rem)
	}
	return prices, ctrs
}

// PendingCount returns how many ads are still awaiting resolution.
func (cs *ClickSim) PendingCount() int { return len(cs.pending) }

// RemainingCTR is the probability that an ad displayed with click-through
// rate ctr0 and now of the given age will still be clicked:
// ctr0·(1−hazard)^age, zero at or beyond the horizon.
func RemainingCTR(ctr0 float64, age int, hazard float64, horizon int) float64 {
	if age < 0 {
		age = 0
	}
	if age >= horizon || ctr0 <= 0 {
		return 0
	}
	return ctr0 * math.Pow(1-hazard, float64(age))
}
