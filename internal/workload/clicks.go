package workload

import (
	"math"
	"math/rand"
)

// Click is a realized click on a previously displayed ad.
type Click struct {
	Advertiser int
	Price      float64 // the per-click price fixed at auction time
	Displayed  int     // round the ad was shown
	Round      int     // round the click arrived
}

// pendingAd is a displayed ad whose click outcome was pre-drawn at display
// time: clickRound < 0 means it will never be clicked.
type pendingAd struct {
	advertiser int
	price      float64
	ctr0       float64
	displayed  int
	clickRound int
}

// OutcomeFunc decides a displayed ad's click fate deterministically:
// whether it is clicked and, if so, after how many rounds. It must be a
// pure function of its arguments so that runs that display the same ads
// (e.g. a sharded and a single-engine run over the same workload) see the
// same clicks regardless of how displays are distributed over simulators.
// A returned delay < 1 or ≥ the simulator's horizon means no click: delays
// of 0 cannot be observed (the display round's Advance has already run),
// and the simulator never delivers past its horizon.
type OutcomeFunc func(advertiser int, price, ctr float64, round int) (clicked bool, delay int)

// ClickSim simulates delayed clicks: a displayed ad with click-through rate
// ctr is eventually clicked with probability ctr; the delay is geometric
// with per-round continuation (1 − Hazard), conditioned on the observable
// window {1, …, Horizon−1}. Delay 0 is excluded by construction — the
// display round's Advance has already run when the ad is registered, so a
// same-round click could never be delivered (see OutcomeFunc) — and the
// normalization keeps the realized click frequency at ctr rather than
// losing the truncated tail. The probability that an ad of age a is still
// going to be clicked decays like ctr·(1−Hazard)^a (see RemainingCTR, the
// Section IV model; exact up to the horizon-truncation correction).
type ClickSim struct {
	// Hazard is the per-round click probability given the ad will be
	// clicked and hasn't been yet.
	Hazard float64
	// Horizon is the age (in rounds) beyond which a click never arrives.
	Horizon int

	rng     *rand.Rand
	outcome OutcomeFunc
	pending []pendingAd
	// clickBuf backs Advance's result so steady-state rounds do not
	// allocate; it is overwritten by the next Advance.
	clickBuf []Click
}

// NewClickSim creates a simulator. hazard must be in (0, 1]; horizon ≥ 1.
func NewClickSim(rng *rand.Rand, hazard float64, horizon int) *ClickSim {
	if hazard <= 0 || hazard > 1 || horizon < 1 {
		panic("workload: invalid click simulator parameters")
	}
	return &ClickSim{Hazard: hazard, Horizon: horizon, rng: rng}
}

// SetOutcome replaces the simulator's random draws with a deterministic
// outcome function (nil restores random draws). With an outcome set,
// Display consumes nothing from the random stream.
func (cs *ClickSim) SetOutcome(f OutcomeFunc) { cs.outcome = f }

// Display registers a shown ad: the advertiser, the price a click will
// cost, the click-through rate of (advertiser, slot), and the display
// round. The click outcome and delay are drawn immediately (but revealed
// only as rounds advance).
func (cs *ClickSim) Display(advertiser int, price, ctr float64, round int) {
	p := pendingAd{advertiser: advertiser, price: price, ctr0: ctr, displayed: round, clickRound: -1}
	if cs.outcome != nil {
		if clicked, delay := cs.outcome(advertiser, price, ctr, round); clicked && delay >= 1 && delay < cs.Horizon {
			p.clickRound = round + delay
		}
	} else if cs.rng.Float64() < ctr {
		if delay := cs.drawDelay(); delay > 0 {
			p.clickRound = round + delay
		}
	}
	cs.pending = append(cs.pending, p)
}

// drawDelay samples a click delay from the geometric hazard distribution
// P(delay = k) ∝ Hazard·(1−Hazard)^(k−1) conditioned on the observable
// support {1, …, Horizon−1}, via a single inverse-CDF uniform draw. The
// conditioning matters twice over: delay 0 is unobservable (the engines run
// Advance before Display within a round, so a delay-0 click would be
// silently dropped — the lost-click bias this replaces), and renormalizing
// instead of discarding the ≥ Horizon tail keeps the eventual click
// probability of a displayed ad at exactly its ctr. Returns 0 — no click —
// when the support is empty (Horizon < 2).
func (cs *ClickSim) drawDelay() int {
	if cs.Horizon < 2 {
		return 0
	}
	if cs.Hazard >= 1 {
		return 1
	}
	// z = P(1 ≤ delay ≤ Horizon−1) under the unconditioned geometric; the
	// smallest k with CDF(k)/z > u is 1 + ⌊ln(1−u·z)/ln(1−Hazard)⌋.
	z := 1 - math.Pow(1-cs.Hazard, float64(cs.Horizon-1))
	u := cs.rng.Float64()
	delay := 1 + int(math.Log1p(-u*z)/math.Log(1-cs.Hazard))
	if delay < 1 {
		delay = 1
	}
	if delay >= cs.Horizon {
		delay = cs.Horizon - 1
	}
	return delay
}

// Advance reveals the clicks that have arrived by the given round and drops
// ads past the horizon. Rounds must be advanced in non-decreasing order,
// but gaps are allowed: a click whose round falls strictly inside a gap is
// delivered at the next Advance, with Click.Round reporting the round the
// click actually arrived (≤ the advanced round), never silently dropped.
// The returned slice is reused by the next Advance call; callers that
// retain clicks across rounds must copy them.
func (cs *ClickSim) Advance(round int) []Click {
	clicks := cs.clickBuf[:0]
	keep := cs.pending[:0]
	for _, p := range cs.pending {
		switch {
		case p.clickRound >= 0 && p.clickRound <= round:
			clicks = append(clicks, Click{
				Advertiser: p.advertiser, Price: p.price,
				Displayed: p.displayed, Round: p.clickRound,
			})
		case p.clickRound > round:
			keep = append(keep, p)
		case p.clickRound < 0 && round-p.displayed < cs.Horizon:
			keep = append(keep, p) // still outstanding (will never click,
			// but the engine cannot know that)
		}
	}
	cs.pending = keep
	cs.clickBuf = clicks
	return clicks
}

// Outstanding returns, for budget throttling, every pending ad of the given
// advertiser as (price, remaining click probability at the current round).
func (cs *ClickSim) Outstanding(advertiser, round int) (prices, ctrs []float64) {
	return cs.AppendOutstanding(nil, nil, advertiser, round)
}

// AppendOutstanding is Outstanding appending into caller-owned buffers, so
// the per-round throttling loop can reuse its scratch instead of allocating
// per advertiser.
func (cs *ClickSim) AppendOutstanding(prices, ctrs []float64, advertiser, round int) ([]float64, []float64) {
	for _, p := range cs.pending {
		if p.advertiser != advertiser {
			continue
		}
		age := round - p.displayed
		rem := RemainingCTR(p.ctr0, age, cs.Hazard, cs.Horizon)
		if rem <= 0 || p.price <= 0 {
			continue
		}
		prices = append(prices, p.price)
		ctrs = append(ctrs, rem)
	}
	return prices, ctrs
}

// PendingCount returns how many ads are still awaiting resolution.
func (cs *ClickSim) PendingCount() int { return len(cs.pending) }

// RemainingCTR is the Section IV model of the probability that an ad
// displayed with click-through rate ctr0 and now of the given age will
// still be clicked: ctr0·(1−hazard)^age, zero at or beyond the horizon.
// Under the simulator's horizon-conditioned delay draw this is exact up to
// the truncation correction (negligible whenever horizon ≫ 1/hazard).
func RemainingCTR(ctr0 float64, age int, hazard float64, horizon int) float64 {
	if age < 0 {
		age = 0
	}
	if age >= horizon || ctr0 <= 0 {
		return 0
	}
	return ctr0 * math.Pow(1-hazard, float64(age))
}
