package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// LifecycleKind classifies one advertiser lifecycle event.
type LifecycleKind uint8

// Lifecycle event kinds.
const (
	// LifecycleJoin activates an advertiser at the event round: it starts
	// bidding in that round's auctions. Advertisers are active by default;
	// a join only matters after a leave (campaign windows are join/leave
	// pairs) or for advertisers declared initially inactive.
	LifecycleJoin LifecycleKind = iota
	// LifecycleLeave deactivates an advertiser at the event round: it stops
	// bidding, but its outstanding ads still settle and charge.
	LifecycleLeave
	// LifecycleRefresh starts a new budget epoch at the event round: the
	// advertiser's remaining budget is topped back up (to Budget, or to its
	// initial budget when the event's Budget is 0) and the pacing target
	// curve restarts. Refreshes are applied by the pacing controller —
	// which holds the fleet's single budget authority — not by each engine,
	// so a sharded fleet deposits exactly once.
	LifecycleRefresh
)

func (k LifecycleKind) String() string {
	switch k {
	case LifecycleJoin:
		return "join"
	case LifecycleLeave:
		return "leave"
	case LifecycleRefresh:
		return "refresh"
	}
	return fmt.Sprintf("LifecycleKind(%d)", uint8(k))
}

// LifecycleEvent is one advertiser lifecycle change, effective at the start
// of the given round (before that round's bids are computed).
type LifecycleEvent struct {
	Round      int
	Kind       LifecycleKind
	Advertiser int
	// Budget is the refresh level for LifecycleRefresh events: remaining
	// budget is restored to it. 0 means "the advertiser's initial budget".
	// Ignored for join/leave.
	Budget float64
}

// Lifecycle is an immutable, round-ordered advertiser lifecycle schedule —
// the event stream engines (join/leave) and the pacing controller
// (refresh epochs) consume at round boundaries. Because consumers replay
// the same schedule as a pure function of the round number, every shard of
// a fleet sees identical active sets with no cross-shard coordination.
//
// Thread safety: a Lifecycle is immutable after construction and safe for
// concurrent readers; each consumer keeps its own cursor.
type Lifecycle struct {
	events []LifecycleEvent
	n      int // advertiser universe size
	// initiallyInactive marks advertisers that start deactivated (their
	// first event is a join strictly after round 0).
	initiallyInactive []bool
}

// NewLifecycle validates and orders a schedule over an advertiser universe
// of size n. Events are stably sorted by round, so same-round events apply
// in the order given. Advertisers whose first event is a LifecycleJoin at a
// round > 0 start inactive (their campaign has not begun).
func NewLifecycle(n int, events []LifecycleEvent) (*Lifecycle, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: lifecycle over %d advertisers", n)
	}
	evs := append([]LifecycleEvent(nil), events...)
	for _, ev := range evs {
		if ev.Advertiser < 0 || ev.Advertiser >= n {
			return nil, fmt.Errorf("workload: lifecycle event for advertiser %d outside universe [0,%d)", ev.Advertiser, n)
		}
		if ev.Round < 0 {
			return nil, fmt.Errorf("workload: lifecycle event at negative round %d", ev.Round)
		}
		if ev.Kind > LifecycleRefresh {
			return nil, fmt.Errorf("workload: unknown lifecycle kind %d", ev.Kind)
		}
		if ev.Budget < 0 {
			return nil, fmt.Errorf("workload: negative refresh budget %v", ev.Budget)
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Round < evs[j].Round })
	lc := &Lifecycle{events: evs, n: n, initiallyInactive: make([]bool, n)}
	seen := make([]bool, n)
	for _, ev := range evs {
		if ev.Kind == LifecycleRefresh || seen[ev.Advertiser] {
			continue
		}
		seen[ev.Advertiser] = true
		lc.initiallyInactive[ev.Advertiser] = ev.Kind == LifecycleJoin && ev.Round > 0
	}
	return lc, nil
}

// NumAdvertisers returns the advertiser universe size.
func (lc *Lifecycle) NumAdvertisers() int { return lc.n }

// Events returns the round-ordered schedule (shared; callers must not
// mutate it).
func (lc *Lifecycle) Events() []LifecycleEvent { return lc.events }

// InitiallyActive reports whether advertiser i is active before round 0 —
// false exactly when its first join/leave event is a join after round 0.
func (lc *Lifecycle) InitiallyActive(i int) bool { return !lc.initiallyInactive[i] }

// Apply invokes fn for every event with Round ≤ round, starting from the
// given cursor, and returns the advanced cursor. Consumers call it once per
// round boundary with their own cursor; it never allocates.
func (lc *Lifecycle) Apply(cursor, round int, fn func(LifecycleEvent)) int {
	for cursor < len(lc.events) && lc.events[cursor].Round <= round {
		fn(lc.events[cursor])
		cursor++
	}
	return cursor
}

// LifecycleConfig parameterizes GenerateLifecycle.
type LifecycleConfig struct {
	// Rounds is the scheduled day length (the campaign horizon).
	Rounds int
	// ChurnFraction is the fraction of advertisers running a campaign
	// window shorter than the day: each gets a join at a random start round
	// and a leave at a random later round. 0 disables churn.
	ChurnFraction float64
	// RefreshEvery, when > 0, schedules a budget-refresh epoch for every
	// advertiser each RefreshEvery rounds (restoring its initial budget).
	RefreshEvery int
	// Seed drives the churn draws.
	Seed int64
}

// GenerateLifecycle builds a synthetic day-in-the-life schedule for the
// workload's advertisers: a ChurnFraction of them run sub-day campaign
// windows (join/leave pairs at random rounds), and every RefreshEvery
// rounds each advertiser's budget refreshes to its initial level.
func GenerateLifecycle(w *Workload, cfg LifecycleConfig) (*Lifecycle, error) {
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("workload: lifecycle over %d rounds", cfg.Rounds)
	}
	if cfg.ChurnFraction < 0 || cfg.ChurnFraction > 1 {
		return nil, fmt.Errorf("workload: churn fraction %v outside [0,1]", cfg.ChurnFraction)
	}
	if cfg.RefreshEvery < 0 {
		return nil, fmt.Errorf("workload: negative refresh period %d", cfg.RefreshEvery)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var events []LifecycleEvent
	for i := range w.Advertisers {
		if cfg.ChurnFraction <= 0 || rng.Float64() >= cfg.ChurnFraction {
			continue
		}
		start := rng.Intn(cfg.Rounds)
		end := start + 1 + rng.Intn(cfg.Rounds-start)
		events = append(events, LifecycleEvent{Round: start, Kind: LifecycleJoin, Advertiser: i})
		if end < cfg.Rounds {
			events = append(events, LifecycleEvent{Round: end, Kind: LifecycleLeave, Advertiser: i})
		}
	}
	if cfg.RefreshEvery > 0 {
		for r := cfg.RefreshEvery; r < cfg.Rounds; r += cfg.RefreshEvery {
			for i := range w.Advertisers {
				events = append(events, LifecycleEvent{Round: r, Kind: LifecycleRefresh, Advertiser: i})
			}
		}
	}
	return NewLifecycle(len(w.Advertisers), events)
}
