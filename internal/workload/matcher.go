package workload

import (
	"strings"
)

// Matcher implements the two-stage query-to-bid-phrase mapping the paper
// assumes (Radlinski et al. [11]): a raw search query is first mapped into
// the lower-dimensional bid-phrase space (normalization plus a rewrite
// table), then matched to advertisers' bid phrases by exact match.
//
// Thread safety: Match is safe for concurrent use once configuration is
// done — the server's admission path calls it from many goroutines —
// but AddRewrite mutates the table and must complete before any
// concurrent Match begins.
type Matcher struct {
	phraseID map[string]int
	rewrites map[string]string
}

// NewMatcher indexes the given bid phrases. Phrase strings are normalized;
// duplicates after normalization keep the first ID.
func NewMatcher(phrases []string) *Matcher {
	m := &Matcher{
		phraseID: make(map[string]int, len(phrases)),
		rewrites: make(map[string]string),
	}
	for id, p := range phrases {
		key := Normalize(p)
		if _, ok := m.phraseID[key]; !ok {
			m.phraseID[key] = id
		}
	}
	return m
}

// AddRewrite registers a stage-one rewrite: queries normalizing to `from`
// are mapped to the bid phrase `to` (both are normalized internally).
// Rewrites model the query-substitution stage: "sneakers" → "running shoes".
func (m *Matcher) AddRewrite(from, to string) {
	m.rewrites[Normalize(from)] = Normalize(to)
}

// Match maps a raw query to a bid-phrase ID: normalize, apply at most one
// rewrite, then exact match. ok=false means no advertiser bid on anything
// matching the query, so no auction runs.
func (m *Matcher) Match(query string) (int, bool) {
	key := Normalize(query)
	if to, ok := m.rewrites[key]; ok {
		key = to
	}
	id, ok := m.phraseID[key]
	return id, ok
}

// Normalize lower-cases, trims, and collapses internal whitespace — the
// deterministic stand-in for the paper's dimensionality-reducing first
// stage.
func Normalize(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}
