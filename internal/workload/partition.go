package workload

import (
	"fmt"
	"math/rand"

	"sharedwd/internal/auction"
	"sharedwd/internal/bitset"
)

// PartitionIndex is the two-way mapping between the global bid-phrase
// universe and the per-shard sub-workloads a Partition call produced.
type PartitionIndex struct {
	// Shards is the number of shards.
	Shards int
	// ShardOf[q] is the shard global phrase q was assigned to.
	ShardOf []int
	// LocalID[q] is phrase q's index within its shard's sub-workload.
	LocalID []int
	// GlobalID[s][l] is the global phrase behind shard s's local phrase l.
	GlobalID [][]int
}

// Partition splits a workload into per-shard sub-workloads following the
// given phrase assignment (assign[q] = shard of global phrase q). Each
// sub-workload keeps the full advertiser universe — advertiser IDs stay
// global, which is what lets shards share one budget ledger — but sees only
// its own phrases' interest sets, rates, and names. Advertiser slices are
// copied so per-shard bid walks do not race; interest sets and slot factors
// are shared read-only. Each sub-workload gets an independently seeded
// random stream derived from the parent seed and the shard index.
//
// Every shard must receive at least one phrase; workloads with per-phrase
// quality are partitioned by slicing the quality rows.
func Partition(w *Workload, assign []int, shards int) ([]*Workload, *PartitionIndex, error) {
	if shards < 1 {
		return nil, nil, fmt.Errorf("workload: partition into %d shards", shards)
	}
	if len(assign) != len(w.Interests) {
		return nil, nil, fmt.Errorf("workload: %d assignments for %d phrases", len(assign), len(w.Interests))
	}
	idx := &PartitionIndex{
		Shards:   shards,
		ShardOf:  append([]int(nil), assign...),
		LocalID:  make([]int, len(assign)),
		GlobalID: make([][]int, shards),
	}
	for q, s := range assign {
		if s < 0 || s >= shards {
			return nil, nil, fmt.Errorf("workload: phrase %d assigned to shard %d of %d", q, s, shards)
		}
		idx.LocalID[q] = len(idx.GlobalID[s])
		idx.GlobalID[s] = append(idx.GlobalID[s], q)
	}
	parts := make([]*Workload, shards)
	for s := 0; s < shards; s++ {
		globals := idx.GlobalID[s]
		if len(globals) == 0 {
			return nil, nil, fmt.Errorf("workload: shard %d of %d received no phrases (fewer phrases than shards, or a skewed router)", s, shards)
		}
		sub := &Workload{
			Cfg:         w.Cfg,
			Advertisers: append([]auction.Advertiser(nil), w.Advertisers...),
			Interests:   make([]bitset.Set, len(globals)),
			Rates:       make([]float64, len(globals)),
			PhraseNames: make([]string, len(globals)),
			SlotFactors: w.SlotFactors,
		}
		sub.Cfg.NumPhrases = len(globals)
		sub.Cfg.Seed = w.Cfg.Seed + int64(s+1)*1_000_003
		sub.rng = rand.New(rand.NewSource(sub.Cfg.Seed))
		if w.Quality != nil {
			sub.Quality = make([][]float64, len(globals))
		}
		for l, q := range globals {
			sub.Interests[l] = w.Interests[q]
			sub.Rates[l] = w.Rates[q]
			sub.PhraseNames[l] = w.PhraseNames[q]
			if w.Quality != nil {
				sub.Quality[l] = w.Quality[q]
			}
		}
		parts[s] = sub
	}
	return parts, idx, nil
}

// PartitionedMatcher is the sharded front door's query mapper: the same
// two-stage normalization/rewrite/exact-match pipeline as Matcher, followed
// by the partition lookup that turns the matched global phrase into
// (shard, local phrase) routing coordinates.
//
// Thread safety: Match is safe for concurrent use once configuration
// (AddRewrite) is done, like Matcher.
type PartitionedMatcher struct {
	m   *Matcher
	idx *PartitionIndex
}

// NewPartitionedMatcher indexes the global phrase names and attaches the
// partition index produced alongside the sub-workloads.
func NewPartitionedMatcher(phrases []string, idx *PartitionIndex) *PartitionedMatcher {
	return &PartitionedMatcher{m: NewMatcher(phrases), idx: idx}
}

// AddRewrite registers a stage-one rewrite (see Matcher.AddRewrite).
func (pm *PartitionedMatcher) AddRewrite(from, to string) { pm.m.AddRewrite(from, to) }

// Match maps a raw query to its serving coordinates: the shard that owns
// the matched bid phrase, the phrase's local ID on that shard, and its
// global ID. ok=false means the query matches no bid phrase.
func (pm *PartitionedMatcher) Match(query string) (shard, local, global int, ok bool) {
	global, ok = pm.m.Match(query)
	if !ok {
		return -1, -1, -1, false
	}
	return pm.idx.ShardOf[global], pm.idx.LocalID[global], global, true
}
