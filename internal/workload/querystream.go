package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// QueryStream generates raw search-query strings round by round, modeling
// the traffic in front of the two-stage matcher: queries arrive as messy
// variants (case, whitespace) of bid phrases or as known synonyms that the
// matcher's rewrite table maps back — plus a fraction of junk queries that
// match nothing and trigger no auction.
//
// Thread safety: a QueryStream owns a private random stream and is not safe
// for concurrent use; give each load-generating goroutine its own stream
// (distinct seeds keep them independent).
type QueryStream struct {
	phrases  []string
	rates    []float64
	synonyms map[string]string // synonym -> phrase
	synList  []string
	junkRate float64
	rng      *rand.Rand
}

// NewQueryStream builds a stream over the workload's phrases. junkRate is
// the probability that an arriving query matches no bid phrase.
func NewQueryStream(w *Workload, junkRate float64, seed int64) *QueryStream {
	if junkRate < 0 || junkRate >= 1 {
		panic(fmt.Sprintf("workload: junk rate %v outside [0,1)", junkRate))
	}
	return &QueryStream{
		phrases: w.PhraseNames,
		// Private copy: the serving stack owns the workload once a server
		// starts, so a drift-injecting load generator (SetRates/RotateRates)
		// must not write through to the server-owned rate slice.
		rates:    append([]float64(nil), w.Rates...),
		synonyms: make(map[string]string),
		junkRate: junkRate,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// SetRates replaces the stream's per-phrase arrival rates — traffic drift
// injection for the replanning demo and tests. Like every QueryStream
// method it must be called from the goroutine that owns the stream.
func (qs *QueryStream) SetRates(rates []float64) {
	if len(rates) != len(qs.rates) {
		panic(fmt.Sprintf("workload: %d rates for %d phrases", len(rates), len(qs.rates)))
	}
	copy(qs.rates, rates)
}

// RotateRates shifts the stream's arrival rates by k phrases (phrase q gets
// phrase (q+k) mod n's rate) — the canonical drift scenario: the same total
// traffic, landing on different phrases than the plan was built for.
func (qs *QueryStream) RotateRates(k int) {
	qs.rates = rotate(qs.rates, k)
}

// rotate returns xs shifted left by k (out[i] = xs[(i+k) mod n]), reusing a
// fresh slice.
func rotate(xs []float64, k int) []float64 {
	n := len(xs)
	if n == 0 {
		return xs
	}
	k = ((k % n) + n) % n
	out := make([]float64, n)
	copy(out, xs[k:])
	copy(out[n-k:], xs[:k])
	return out
}

// AddSynonym registers a raw-query synonym for a phrase; the caller should
// mirror it into the matcher's rewrite table.
func (qs *QueryStream) AddSynonym(synonym, phrase string) {
	qs.synonyms[synonym] = phrase
	qs.synList = append(qs.synList, synonym)
}

// Round emits the raw queries for one round: each phrase occurs with its
// search rate (possibly several times for high-rate phrases), rendered as a
// messy variant or synonym, interleaved with junk queries.
func (qs *QueryStream) Round() []string {
	var out []string
	for q, rate := range qs.rates {
		if qs.rng.Float64() >= rate {
			continue
		}
		out = append(out, qs.render(qs.phrases[q]))
		// High-volume phrases can arrive more than once per round; the
		// batch still resolves one auction per phrase.
		for qs.rng.Float64() < rate/2 {
			out = append(out, qs.render(qs.phrases[q]))
		}
	}
	junk := 0
	for qs.rng.Float64() < qs.junkRate {
		junk++
		out = append(out, fmt.Sprintf("zzz unmatched query %d %d", junk, qs.rng.Intn(1000)))
	}
	qs.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// render produces a messy variant of the phrase: random casing, padding,
// doubled spaces, or a registered synonym.
func (qs *QueryStream) render(phrase string) string {
	// Prefer a synonym for this phrase when one exists, sometimes.
	if qs.rng.Intn(4) == 0 {
		for _, syn := range qs.synList {
			if qs.synonyms[syn] == phrase {
				return syn
			}
		}
	}
	s := phrase
	switch qs.rng.Intn(4) {
	case 0:
		s = strings.ToUpper(s)
	case 1:
		s = titleCase(s)
	}
	if qs.rng.Intn(3) == 0 {
		s = "  " + s + " "
	}
	if qs.rng.Intn(3) == 0 {
		s = strings.ReplaceAll(s, " ", "   ")
	}
	return s
}

// titleCase upper-cases the first letter of each ASCII word — deliberately
// messy user-style capitalization, not linguistic title casing.
func titleCase(s string) string {
	fields := strings.Fields(s)
	for i, f := range fields {
		if f[0] >= 'a' && f[0] <= 'z' {
			fields[i] = string(f[0]-'a'+'A') + f[1:]
		}
	}
	return strings.Join(fields, " ")
}

// Occurrences maps a batch of raw queries to the per-phrase occurrence
// vector the engine consumes, using the matcher; unmatched queries are
// counted and dropped (no auction).
func Occurrences(m *Matcher, numPhrases int, queries []string) (occurring []bool, unmatched int) {
	occurring = make([]bool, numPhrases)
	for _, q := range queries {
		if id, ok := m.Match(q); ok {
			occurring[id] = true
		} else {
			unmatched++
		}
	}
	return occurring, unmatched
}
