package workload

import (
	"math"
	"strings"
	"testing"
)

func streamFixture(t *testing.T) (*Workload, *QueryStream, *Matcher) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumAdvertisers = 50
	cfg.NumPhrases = 8
	cfg.Seed = 5
	w := Generate(cfg)
	qs := NewQueryStream(w, 0.3, 42)
	m := NewMatcher(w.PhraseNames)
	return w, qs, m
}

func TestNewQueryStreamValidation(t *testing.T) {
	w := Generate(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for junk rate 1")
		}
	}()
	NewQueryStream(w, 1, 1)
}

// TestStreamMatchesBackToPhrases: every non-junk query the stream emits
// must match back to some phrase through the two-stage matcher, including
// messy variants and registered synonyms.
func TestStreamMatchesBackToPhrases(t *testing.T) {
	w, qs, m := streamFixture(t)
	qs.AddSynonym("boots for trails", w.PhraseNames[0])
	m.AddRewrite("boots for trails", w.PhraseNames[0])

	totalMatched, totalJunk := 0, 0
	for r := 0; r < 200; r++ {
		batch := qs.Round()
		occ, unmatched := Occurrences(m, len(w.PhraseNames), batch)
		totalJunk += unmatched
		for _, o := range occ {
			if o {
				totalMatched++
			}
		}
		// Every unmatched query must be a junk query by construction.
		for _, q := range batch {
			if _, ok := m.Match(q); !ok && !strings.Contains(q, "zzz unmatched") {
				t.Fatalf("legitimate query %q failed to match", q)
			}
		}
	}
	if totalMatched == 0 || totalJunk == 0 {
		t.Fatalf("stream degenerate: matched=%d junk=%d", totalMatched, totalJunk)
	}
}

// TestStreamOccurrenceRates: over many rounds, the per-phrase occurrence
// frequency tracks the workload's search rates.
func TestStreamOccurrenceRates(t *testing.T) {
	w, qs, m := streamFixture(t)
	const rounds = 8000
	counts := make([]int, len(w.PhraseNames))
	for r := 0; r < rounds; r++ {
		occ, _ := Occurrences(m, len(w.PhraseNames), qs.Round())
		for q, o := range occ {
			if o {
				counts[q]++
			}
		}
	}
	for q, c := range counts {
		got := float64(c) / rounds
		if math.Abs(got-w.Rates[q]) > 0.03 {
			t.Fatalf("phrase %d: occurrence rate %v vs search rate %v", q, got, w.Rates[q])
		}
	}
}

func TestStreamDeterministic(t *testing.T) {
	w, _, _ := streamFixture(t)
	a := NewQueryStream(w, 0.2, 7)
	b := NewQueryStream(w, 0.2, 7)
	for r := 0; r < 20; r++ {
		ba, bb := a.Round(), b.Round()
		if len(ba) != len(bb) {
			t.Fatal("same seed diverged")
		}
		for i := range ba {
			if ba[i] != bb[i] {
				t.Fatal("same seed diverged")
			}
		}
	}
}
