package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace is a recorded sequence of rounds — which phrases occurred and the
// full bid vector per round — so an experiment can be captured once and
// replayed bit-for-bit against different engine configurations (the
// standard way to compare policies on identical inputs).
type Trace struct {
	NumPhrases     int
	NumAdvertisers int
	Rounds         []TraceRound
}

// TraceRound is one recorded round.
type TraceRound struct {
	Occurring []bool
	Bids      []float64
}

// Record captures the workload's next `rounds` rounds (occurrences sampled
// from search rates, bids perturbed by walkScale between rounds) into a
// replayable trace. The workload's RNG advances exactly as a live run's
// would.
func Record(w *Workload, rounds int, walkScale float64) *Trace {
	tr := &Trace{
		NumPhrases:     w.Cfg.NumPhrases,
		NumAdvertisers: w.Cfg.NumAdvertisers,
		Rounds:         make([]TraceRound, 0, rounds),
	}
	for r := 0; r < rounds; r++ {
		tr.Rounds = append(tr.Rounds, TraceRound{
			Occurring: w.SampleRound(),
			Bids:      w.Bids(),
		})
		if walkScale > 0 {
			w.PerturbBids(walkScale)
		}
	}
	return tr
}

// WriteCSV serializes the trace: a header row, then one row per round with
// round index, a 0/1 occurrence string, and the bid vector.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"round", "occurring"}
	for i := 0; i < tr.NumAdvertisers; i++ {
		header = append(header, fmt.Sprintf("bid%d", i))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for r, round := range tr.Rounds {
		occ := make([]byte, tr.NumPhrases)
		for q, o := range round.Occurring {
			if o {
				occ[q] = '1'
			} else {
				occ[q] = '0'
			}
		}
		row := []string{strconv.Itoa(r), string(occ)}
		for _, b := range round.Bids {
			row = append(row, strconv.FormatFloat(b, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTraceCSV parses a trace written by WriteCSV, validating shape.
func ReadTraceCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if len(header) < 3 || header[0] != "round" || header[1] != "occurring" {
		return nil, fmt.Errorf("workload: unrecognized trace header %v", header)
	}
	tr := &Trace{NumAdvertisers: len(header) - 2}
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace row: %w", err)
		}
		if len(row) != len(header) {
			return nil, fmt.Errorf("workload: row has %d fields, want %d", len(row), len(header))
		}
		occStr := row[1]
		if tr.NumPhrases == 0 {
			tr.NumPhrases = len(occStr)
		} else if len(occStr) != tr.NumPhrases {
			return nil, fmt.Errorf("workload: occurrence width %d, want %d", len(occStr), tr.NumPhrases)
		}
		round := TraceRound{
			Occurring: make([]bool, len(occStr)),
			Bids:      make([]float64, tr.NumAdvertisers),
		}
		for q, c := range occStr {
			switch c {
			case '1':
				round.Occurring[q] = true
			case '0':
			default:
				return nil, fmt.Errorf("workload: bad occurrence flag %q", c)
			}
		}
		for i, f := range row[2:] {
			b, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("workload: bid %d: %w", i, err)
			}
			round.Bids[i] = b
		}
		tr.Rounds = append(tr.Rounds, round)
	}
	return tr, nil
}

// Apply installs round r's bids into the workload and returns the round's
// occurrence vector, so an engine can be stepped against the trace:
//
//	for r := range trace.Rounds {
//	    eng.Step(trace.Apply(w, r))
//	}
func (tr *Trace) Apply(w *Workload, r int) []bool {
	round := tr.Rounds[r]
	for i := range w.Advertisers {
		w.Advertisers[i].Bid = round.Bids[i]
	}
	occ := make([]bool, len(round.Occurring))
	copy(occ, round.Occurring)
	return occ
}
