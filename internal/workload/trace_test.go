package workload

import (
	"bytes"
	"strings"
	"testing"

	"sharedwd/internal/auction"
	"sharedwd/internal/bitset"
)

func traceFixture(t *testing.T) (*Workload, *Trace) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumAdvertisers = 12
	cfg.NumPhrases = 4
	cfg.Seed = 3
	w := Generate(cfg)
	return w, Record(w, 10, 0.1)
}

func TestRecordShape(t *testing.T) {
	w, tr := traceFixture(t)
	if len(tr.Rounds) != 10 {
		t.Fatalf("rounds = %d", len(tr.Rounds))
	}
	if tr.NumAdvertisers != len(w.Advertisers) || tr.NumPhrases != len(w.Interests) {
		t.Fatalf("dims = %d/%d", tr.NumAdvertisers, tr.NumPhrases)
	}
	// Bid walks must actually appear across rounds.
	same := true
	for i := range tr.Rounds[0].Bids {
		if tr.Rounds[0].Bids[i] != tr.Rounds[9].Bids[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("bids did not change over the trace")
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	_, tr := traceFixture(t)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPhrases != tr.NumPhrases || back.NumAdvertisers != tr.NumAdvertisers {
		t.Fatalf("dims %d/%d vs %d/%d", back.NumPhrases, back.NumAdvertisers, tr.NumPhrases, tr.NumAdvertisers)
	}
	if len(back.Rounds) != len(tr.Rounds) {
		t.Fatalf("rounds %d vs %d", len(back.Rounds), len(tr.Rounds))
	}
	for r := range tr.Rounds {
		for q := range tr.Rounds[r].Occurring {
			if back.Rounds[r].Occurring[q] != tr.Rounds[r].Occurring[q] {
				t.Fatalf("round %d occurrence mismatch", r)
			}
		}
		for i := range tr.Rounds[r].Bids {
			if back.Rounds[r].Bids[i] != tr.Rounds[r].Bids[i] {
				t.Fatalf("round %d bid %d mismatch", r, i)
			}
		}
	}
}

func TestReadTraceCSVRejectsCorruption(t *testing.T) {
	cases := []string{
		"",                               // no header
		"foo,bar,bid0\n",                 // bad header
		"round,occurring,bid0\n0,2,1\n",  // bad flag
		"round,occurring,bid0\n0,10,x\n", // bad bid
		"round,occurring,bid0\n0,10\n",   // short row
		"round,occurring,bid0\n0,10,1\n1,100,1\n", // width change
	}
	for i, c := range cases {
		if _, err := ReadTraceCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestApplyInstallsBids(t *testing.T) {
	advertisers := []auction.Advertiser{
		{ID: 0, Bid: 1, Quality: 1, Budget: 10},
		{ID: 1, Bid: 2, Quality: 1, Budget: 10},
	}
	all := bitset.FromIndices(2, 0, 1)
	w, err := NewCustom(advertisers, []bitset.Set{all}, []float64{1}, []float64{0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{
		NumPhrases:     1,
		NumAdvertisers: 2,
		Rounds: []TraceRound{
			{Occurring: []bool{true}, Bids: []float64{7, 8}},
		},
	}
	occ := tr.Apply(w, 0)
	if !occ[0] {
		t.Fatal("occurrence not applied")
	}
	if w.Advertisers[0].Bid != 7 || w.Advertisers[1].Bid != 8 {
		t.Fatalf("bids = %v, %v", w.Advertisers[0].Bid, w.Advertisers[1].Bid)
	}
	// Mutating the returned vector must not corrupt the trace.
	occ[0] = false
	if !tr.Rounds[0].Occurring[0] {
		t.Fatal("Apply aliased the trace's occurrence slice")
	}
}
