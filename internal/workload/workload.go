// Package workload generates the synthetic auction workloads the benchmark
// harness runs on, substituting for the proprietary search traces the paper
// had no public version of (see DESIGN.md §2).
//
// The generator produces the structure the paper's techniques exploit:
// topic-clustered advertiser interests (general stores shared across many
// phrases, specialists on few), Zipf-like phrase popularity driving
// per-round Bernoulli occurrence (the paper's search-rate model), bids that
// random-walk between rounds (advertisers run automated bidding programs),
// and a delayed-click simulator whose remaining click probability decays
// geometrically with ad age — the shape Section IV assumes for outstanding
// ads.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"sharedwd/internal/auction"
	"sharedwd/internal/bitset"
)

// Config parameterizes workload generation.
type Config struct {
	NumAdvertisers int
	NumPhrases     int
	NumTopics      int
	Slots          int
	Seed           int64

	// BaseSearchRate scales phrase occurrence probabilities; phrase ranked
	// r (0-based popularity order) gets min(0.95, BaseSearchRate/(r+1)^0.7).
	BaseSearchRate float64
	// Bid range for initial bids.
	MinBid, MaxBid float64
	// Daily budget range.
	MinBudget, MaxBudget float64
	// PerPhraseQuality makes the advertiser-specific CTR factor c_i^q vary
	// by phrase (the Section III regime); otherwise a single c_i is used.
	PerPhraseQuality bool
	// BroadMatchFraction, when positive, overrides the default 1/3 chance
	// that an advertiser is "general" (bidding across topics). High values
	// model broad-match-heavy campaigns where most advertisers appear in
	// most auctions — the overlap regime the paper's sharing heuristic
	// targets. Zero keeps the default behaviour (and, deliberately, the
	// default random stream: existing seeds reproduce bit-identically).
	BroadMatchFraction float64
}

// DefaultConfig returns a mid-sized workload configuration.
func DefaultConfig() Config {
	return Config{
		NumAdvertisers: 400,
		NumPhrases:     24,
		NumTopics:      6,
		Slots:          4,
		Seed:           1,
		BaseSearchRate: 0.8,
		MinBid:         0.1,
		MaxBid:         5,
		MinBudget:      20,
		MaxBudget:      200,
	}
}

// HighOverlapConfig returns a broad-match-heavy workload configuration:
// most advertisers are general (85% broad match), so the occurring
// auctions share most of their participant sets. This is the regime where
// the Section-II sharing heuristic finds large common fragments and shared
// winner determination should beat per-auction scans on wall-clock, not
// just operator counts — the crossover the benchmarks measure.
func HighOverlapConfig() Config {
	cfg := DefaultConfig()
	cfg.BroadMatchFraction = 0.85
	return cfg
}

// Validate reports whether the configuration can generate a workload: all
// dimensions positive and ranges non-inverted. Generate panics on exactly
// the configurations Validate rejects.
func (c Config) Validate() error {
	if c.NumAdvertisers <= 0 || c.NumPhrases <= 0 || c.NumTopics <= 0 || c.Slots <= 0 {
		return fmt.Errorf("workload: non-positive dimensions in %+v", c)
	}
	if c.MinBid > c.MaxBid || c.MinBudget > c.MaxBudget {
		return fmt.Errorf("workload: inverted bid or budget range in %+v", c)
	}
	return nil
}

// Workload is a generated auction universe.
//
// Thread safety: a Workload is not safe for concurrent use. The engine (or
// server) stepping it owns its random stream and bid vector; mutators
// (PerturbBids, budget edits) must run on the same goroutine as Step.
type Workload struct {
	Cfg         Config
	Advertisers []auction.Advertiser
	// Interests[q] is the advertiser set of phrase q.
	Interests []bitset.Set
	// Rates[q] is phrase q's per-round occurrence probability.
	Rates []float64
	// PhraseNames are human-readable bid phrases ("topic2/phrase-5").
	PhraseNames []string
	// SlotFactors are the descending d_j.
	SlotFactors []float64
	// Quality[q][i] is c_i^q when Cfg.PerPhraseQuality; otherwise nil and
	// Advertisers[i].Quality is the global c_i.
	Quality [][]float64

	rng *rand.Rand
}

// Generate builds a workload from the configuration. It validates the
// configuration and panics on nonsensical values, since configurations are
// authored by harness code, not end users.
func Generate(cfg Config) *Workload {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{Cfg: cfg, rng: rng}

	// Advertisers: a third are "general" (interested across topics), the
	// rest specialize in one topic — the shoe-store structure of §II-B.
	topicOf := make([]int, cfg.NumAdvertisers)
	general := make([]bool, cfg.NumAdvertisers)
	w.Advertisers = make([]auction.Advertiser, cfg.NumAdvertisers)
	for i := range w.Advertisers {
		topicOf[i] = rng.Intn(cfg.NumTopics)
		// The branch keeps the default path's random stream untouched:
		// configs with BroadMatchFraction == 0 consume the same draws as
		// before the knob existed, so seeded workloads stay reproducible.
		if cfg.BroadMatchFraction > 0 {
			general[i] = rng.Float64() < cfg.BroadMatchFraction
		} else {
			general[i] = rng.Intn(3) == 0
		}
		w.Advertisers[i] = auction.Advertiser{
			ID:      i,
			Bid:     cfg.MinBid + rng.Float64()*(cfg.MaxBid-cfg.MinBid),
			Quality: 0.5 + rng.Float64(), // c_i ∈ [0.5, 1.5)
			Budget:  cfg.MinBudget + rng.Float64()*(cfg.MaxBudget-cfg.MinBudget),
		}
	}

	// Phrases: each belongs to a topic; popularity rank sets its rate.
	w.Interests = make([]bitset.Set, cfg.NumPhrases)
	w.Rates = make([]float64, cfg.NumPhrases)
	w.PhraseNames = make([]string, cfg.NumPhrases)
	for q := 0; q < cfg.NumPhrases; q++ {
		topic := q % cfg.NumTopics
		w.PhraseNames[q] = fmt.Sprintf("topic%d/phrase-%d", topic, q)
		w.Rates[q] = math.Min(0.95, cfg.BaseSearchRate/math.Pow(float64(q+1), 0.7))
		in := bitset.New(cfg.NumAdvertisers)
		for i := 0; i < cfg.NumAdvertisers; i++ {
			switch {
			case general[i]:
				// Broad-match campaigns match every phrase by definition —
				// identical interest signatures are what lets the sharing
				// heuristic put all of them in one shared fragment. The
				// default mix keeps the original probabilistic membership
				// (and random stream).
				if cfg.BroadMatchFraction > 0 {
					in.Add(i)
				} else if rng.Float64() < 0.8 {
					in.Add(i)
				}
			case topicOf[i] == topic:
				if rng.Float64() < 0.7 {
					in.Add(i)
				}
			default:
				if rng.Float64() < 0.02 {
					in.Add(i)
				}
			}
		}
		w.Interests[q] = in
	}

	// Slot factors: geometric decay from 0.3 (the common empirical shape).
	w.SlotFactors = make([]float64, cfg.Slots)
	v := 0.3
	for j := range w.SlotFactors {
		w.SlotFactors[j] = v
		v *= 0.7
	}

	if cfg.PerPhraseQuality {
		w.Quality = make([][]float64, cfg.NumPhrases)
		for q := range w.Quality {
			w.Quality[q] = make([]float64, cfg.NumAdvertisers)
			for i := range w.Quality[q] {
				// Per-phrase factor centered on the advertiser's base
				// quality: a book store is better at "books" than "DVDs".
				base := w.Advertisers[i].Quality
				w.Quality[q][i] = math.Max(0.05, base*(0.6+0.8*rng.Float64()))
			}
		}
	}
	return w
}

// NewCustom assembles a workload from explicit parts, for focused
// experiments (e.g. the Section-IV gaming scenario) and tests. interests
// and rates must have equal length; interest sets must have capacity
// len(advertisers); slotFactors must be descending.
func NewCustom(advertisers []auction.Advertiser, interests []bitset.Set, rates, slotFactors []float64, seed int64) (*Workload, error) {
	if len(interests) != len(rates) {
		return nil, fmt.Errorf("workload: %d interest sets, %d rates", len(interests), len(rates))
	}
	minBid, maxBid := math.Inf(1), math.Inf(-1)
	for i, a := range advertisers {
		if a.ID != i {
			return nil, fmt.Errorf("workload: advertiser %d has ID %d; IDs must be positional", i, a.ID)
		}
		minBid = math.Min(minBid, a.Bid)
		maxBid = math.Max(maxBid, a.Bid)
	}
	for q, in := range interests {
		if in.Cap() != len(advertisers) {
			return nil, fmt.Errorf("workload: interest set %d capacity %d, want %d", q, in.Cap(), len(advertisers))
		}
		if rates[q] < 0 || rates[q] > 1 {
			return nil, fmt.Errorf("workload: rate[%d] = %v", q, rates[q])
		}
	}
	for j := 1; j < len(slotFactors); j++ {
		if slotFactors[j] > slotFactors[j-1] {
			return nil, fmt.Errorf("workload: slot factors not descending")
		}
	}
	names := make([]string, len(interests))
	for q := range names {
		names[q] = fmt.Sprintf("phrase-%d", q)
	}
	return &Workload{
		Cfg: Config{
			NumAdvertisers: len(advertisers),
			NumPhrases:     len(interests),
			NumTopics:      1,
			Slots:          len(slotFactors),
			Seed:           seed,
			MinBid:         minBid,
			MaxBid:         maxBid,
		},
		Advertisers: advertisers,
		Interests:   interests,
		Rates:       rates,
		PhraseNames: names,
		SlotFactors: slotFactors,
		rng:         rand.New(rand.NewSource(seed)),
	}, nil
}

// Rng exposes the workload's deterministic random stream so that
// components simulating the same world (e.g. the click simulator) draw
// from one reproducible source.
func (w *Workload) Rng() *rand.Rand { return w.rng }

// QualityFor returns c_i^q — the per-phrase factor when configured, else
// the advertiser's global quality.
func (w *Workload) QualityFor(q, i int) float64 {
	if w.Quality != nil {
		return w.Quality[q][i]
	}
	return w.Advertisers[i].Quality
}

// SampleRound draws which phrases occur this round: independent Bernoulli
// trials with the phrases' search rates, the paper's round model.
func (w *Workload) SampleRound() []bool {
	return w.SampleRoundInto(make([]bool, w.Cfg.NumPhrases))
}

// SampleRoundInto is SampleRound writing into occ when its capacity allows,
// so steady-state engines can reuse one occurrence buffer; a fresh slice is
// allocated only when occ is too small.
func (w *Workload) SampleRoundInto(occ []bool) []bool {
	if cap(occ) < w.Cfg.NumPhrases {
		occ = make([]bool, w.Cfg.NumPhrases)
	}
	occ = occ[:w.Cfg.NumPhrases]
	for q, r := range w.Rates {
		occ[q] = w.rng.Float64() < r
	}
	return occ
}

// SetRates replaces the workload's per-phrase search rates — traffic drift
// injection for replanning benchmarks and tests. Like every workload
// mutator it must run on the goroutine that owns the workload (the engine's
// round goroutine); a running server owns its workload, so drive drift
// through QueryStream.SetRates there instead.
func (w *Workload) SetRates(rates []float64) error {
	if len(rates) != len(w.Rates) {
		return fmt.Errorf("workload: %d rates for %d phrases", len(rates), len(w.Rates))
	}
	for q, r := range rates {
		if math.IsNaN(r) || r < 0 || r > 1 {
			return fmt.Errorf("workload: rate[%d] = %v outside [0,1]", q, r)
		}
	}
	copy(w.Rates, rates)
	return nil
}

// RotateRates shifts the search rates by k phrases (phrase q gets phrase
// (q+k) mod n's rate): the canonical drift scenario — total traffic volume
// unchanged, but landing on different phrases than the plan was built for.
// Same ownership caveat as SetRates.
func (w *Workload) RotateRates(k int) {
	n := len(w.Rates)
	if n == 0 {
		return
	}
	k = ((k % n) + n) % n
	rotated := make([]float64, n)
	copy(rotated, w.Rates[k:])
	copy(rotated[n-k:], w.Rates[:k])
	copy(w.Rates, rotated)
}

// PerturbBids applies one step of a clamped multiplicative random walk to
// every bid, modeling automated bidding programs adjusting between rounds.
func (w *Workload) PerturbBids(scale float64) {
	for i := range w.Advertisers {
		f := 1 + scale*(w.rng.Float64()*2-1)
		b := w.Advertisers[i].Bid * f
		if b < w.Cfg.MinBid {
			b = w.Cfg.MinBid
		}
		if b > w.Cfg.MaxBid {
			b = w.Cfg.MaxBid
		}
		w.Advertisers[i].Bid = b
	}
}

// Bids returns the current bid vector (a copy).
func (w *Workload) Bids() []float64 {
	out := make([]float64, len(w.Advertisers))
	for i, a := range w.Advertisers {
		out[i] = a.Bid
	}
	return out
}
