package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig()
	w := Generate(cfg)
	if len(w.Advertisers) != cfg.NumAdvertisers {
		t.Fatalf("advertisers = %d", len(w.Advertisers))
	}
	if len(w.Interests) != cfg.NumPhrases || len(w.Rates) != cfg.NumPhrases {
		t.Fatal("phrase arrays wrong length")
	}
	if len(w.SlotFactors) != cfg.Slots {
		t.Fatal("slot factors wrong length")
	}
	for j := 1; j < len(w.SlotFactors); j++ {
		if w.SlotFactors[j] >= w.SlotFactors[j-1] {
			t.Fatal("slot factors must be strictly descending")
		}
	}
	for q, r := range w.Rates {
		if r <= 0 || r > 0.95 {
			t.Fatalf("rate[%d] = %v", q, r)
		}
		if q > 0 && w.Rates[q] > w.Rates[q-1] {
			t.Fatal("rates should decay with rank")
		}
	}
	for _, a := range w.Advertisers {
		if a.Bid < cfg.MinBid || a.Bid > cfg.MaxBid {
			t.Fatalf("bid %v out of range", a.Bid)
		}
		if a.Budget < cfg.MinBudget || a.Budget > cfg.MaxBudget {
			t.Fatalf("budget %v out of range", a.Budget)
		}
		if a.Quality <= 0 {
			t.Fatal("non-positive quality")
		}
	}
	if w.Quality != nil {
		t.Fatal("global-quality config should not build per-phrase qualities")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	for i := range a.Advertisers {
		if a.Advertisers[i] != b.Advertisers[i] {
			t.Fatal("same seed must generate identical advertisers")
		}
	}
	for q := range a.Interests {
		if !a.Interests[q].Equal(b.Interests[q]) {
			t.Fatal("same seed must generate identical interests")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.NumAdvertisers = 0 },
		func(c *Config) { c.NumTopics = 0 },
		func(c *Config) { c.MinBid = 10; c.MaxBid = 1 },
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			Generate(cfg)
		}()
	}
}

func TestPerPhraseQuality(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerPhraseQuality = true
	w := Generate(cfg)
	if w.Quality == nil {
		t.Fatal("expected per-phrase qualities")
	}
	if w.QualityFor(0, 0) != w.Quality[0][0] {
		t.Fatal("QualityFor should use the per-phrase table")
	}
	// Factors must actually vary across phrases for some advertiser.
	varies := false
	for i := 0; i < cfg.NumAdvertisers && !varies; i++ {
		if w.Quality[0][i] != w.Quality[1][i] {
			varies = true
		}
	}
	if !varies {
		t.Fatal("per-phrase qualities do not vary")
	}
}

func TestInterestOverlapStructure(t *testing.T) {
	w := Generate(DefaultConfig())
	// General advertisers make phrases overlap: some pair of phrases from
	// different topics must share a substantial advertiser set.
	maxOverlap := 0
	for a := 0; a < len(w.Interests); a++ {
		for b := a + 1; b < len(w.Interests); b++ {
			if ov := w.Interests[a].IntersectCount(w.Interests[b]); ov > maxOverlap {
				maxOverlap = ov
			}
		}
	}
	if maxOverlap < 10 {
		t.Fatalf("max phrase overlap = %d; workload lacks the sharing structure", maxOverlap)
	}
}

func TestSampleRoundRespectsRates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	w := Generate(cfg)
	const rounds = 20000
	counts := make([]int, cfg.NumPhrases)
	for r := 0; r < rounds; r++ {
		for q, occ := range w.SampleRound() {
			if occ {
				counts[q]++
			}
		}
	}
	for q, c := range counts {
		got := float64(c) / rounds
		if math.Abs(got-w.Rates[q]) > 0.02 {
			t.Fatalf("phrase %d: empirical rate %v vs %v", q, got, w.Rates[q])
		}
	}
}

func TestPerturbBidsStaysInRange(t *testing.T) {
	w := Generate(DefaultConfig())
	before := w.Bids()
	for i := 0; i < 50; i++ {
		w.PerturbBids(0.3)
	}
	after := w.Bids()
	changed := false
	for i := range after {
		if after[i] < w.Cfg.MinBid || after[i] > w.Cfg.MaxBid {
			t.Fatalf("bid %v escaped range", after[i])
		}
		if after[i] != before[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("PerturbBids changed nothing")
	}
}

func TestMatcher(t *testing.T) {
	m := NewMatcher([]string{"hiking boots", "high heels", "running shoes"})
	if id, ok := m.Match("  Hiking   BOOTS "); !ok || id != 0 {
		t.Fatalf("Match = %d %v", id, ok)
	}
	if _, ok := m.Match("sneakers"); ok {
		t.Fatal("unmatched query should miss")
	}
	m.AddRewrite("sneakers", "running shoes")
	if id, ok := m.Match("Sneakers"); !ok || id != 2 {
		t.Fatalf("rewrite Match = %d %v", id, ok)
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize("  FOO   bar\tbaz "); got != "foo bar baz" {
		t.Fatalf("Normalize = %q", got)
	}
}

func TestClickSimValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewClickSim(rand.New(rand.NewSource(1)), 0, 10)
}

func TestClickSimEventualClickRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cs := NewClickSim(rng, 0.5, 60)
	const n = 20000
	ctr := 0.35
	for i := 0; i < n; i++ {
		cs.Display(i, 1, ctr, 0)
	}
	clicks := 0
	for round := 0; round <= 60; round++ {
		clicks += len(cs.Advance(round))
	}
	got := float64(clicks) / n
	// Truncation at the horizon loses a negligible (1-0.5)^60 tail.
	if math.Abs(got-ctr) > 0.02 {
		t.Fatalf("eventual click rate %v, want ≈ %v", got, ctr)
	}
	if cs.PendingCount() != 0 {
		t.Fatalf("pending = %d after horizon", cs.PendingCount())
	}
}

func TestClickSimOutstanding(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cs := NewClickSim(rng, 0.3, 10)
	cs.Display(7, 2.5, 0.4, 0)
	cs.Display(8, 1.0, 0.4, 0)
	cs.Advance(0)
	prices, ctrs := cs.Outstanding(7, 2)
	if len(prices) > 1 {
		t.Fatalf("advertiser 7 has %d outstanding ads", len(prices))
	}
	if len(prices) == 1 {
		if prices[0] != 2.5 {
			t.Fatalf("price = %v", prices[0])
		}
		want := 0.4 * math.Pow(0.7, 2)
		if math.Abs(ctrs[0]-want) > 1e-12 {
			t.Fatalf("remaining ctr = %v, want %v", ctrs[0], want)
		}
	}
}

func TestRemainingCTR(t *testing.T) {
	if got := RemainingCTR(0.4, 0, 0.3, 10); got != 0.4 {
		t.Fatalf("age 0: %v", got)
	}
	if got := RemainingCTR(0.4, 10, 0.3, 10); got != 0 {
		t.Fatalf("at horizon: %v", got)
	}
	if got := RemainingCTR(0.4, -3, 0.3, 10); got != 0.4 {
		t.Fatalf("negative age: %v", got)
	}
}

// TestQuickClickNeverBeforeDisplayOrAfterHorizon: structural invariants of
// the click stream.
func TestQuickClickInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := NewClickSim(rng, 0.2+0.6*rng.Float64(), 1+rng.Intn(20))
		displayed := map[int]int{}
		for r := 0; r < 30; r++ {
			if rng.Intn(2) == 0 {
				id := rng.Intn(10)
				cs.Display(id, 1, rng.Float64(), r)
				displayed[id*100+r] = r
			}
			for _, c := range cs.Advance(r) {
				if c.Round != r {
					return false
				}
				if c.Round < c.Displayed || c.Round-c.Displayed >= cs.Horizon {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestClickSimEngineOrderClickRate is the lost-click-bias regression: the
// engines run Advance before Display within a round, so a delay-0 click
// could never be delivered. The delay draw now has support {1,…,Horizon−1},
// normalized so the realized click frequency stays ctr — before the fix,
// roughly a Hazard fraction of clicks (the delay-0 mass) was silently
// dropped, biasing spend low.
func TestClickSimEngineOrderClickRate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const (
		hazard = 0.5 // delay-0 mass under the old draw: half the clicks
		ctr    = 0.4
		rounds = 4000
	)
	cs := NewClickSim(rng, hazard, 20)
	displays, clicks := 0, 0
	for r := 0; r < rounds+cs.Horizon; r++ {
		clicks += len(cs.Advance(r)) // engine order: Advance, then Display
		if r < rounds {
			cs.Display(r%7, 1, ctr, r)
			displays++
		}
	}
	got := float64(clicks) / float64(displays)
	if math.Abs(got-ctr) > 0.02 {
		t.Fatalf("realized click rate %v under engine order, want ≈ %v (lost-click bias)", got, ctr)
	}
}

// TestClickSimDelaySupport: drawn delays always land in {1,…,Horizon−1} —
// delay 0 (unobservable) and ≥ Horizon (never delivered) are excluded by
// construction, including at the degenerate Hazard = 1 and Horizon = 2
// corners.
func TestClickSimDelaySupport(t *testing.T) {
	for _, tc := range []struct {
		hazard  float64
		horizon int
	}{{0.5, 20}, {0.05, 3}, {1, 10}, {0.9, 2}} {
		rng := rand.New(rand.NewSource(7))
		cs := NewClickSim(rng, tc.hazard, tc.horizon)
		for i := 0; i < 2000; i++ {
			if d := cs.drawDelay(); d < 1 || d >= tc.horizon {
				t.Fatalf("hazard %v horizon %d: delay %d outside {1,…,%d}", tc.hazard, tc.horizon, d, tc.horizon-1)
			}
		}
	}
	// Horizon 1 has no observable window at all: no click is ever drawn.
	cs := NewClickSim(rand.New(rand.NewSource(7)), 0.5, 1)
	for i := 0; i < 100; i++ {
		if d := cs.drawDelay(); d != 0 {
			t.Fatalf("horizon 1: delay %d, want 0 (no click)", d)
		}
	}
}

// TestClickSimGappedAdvance is the gap-drop regression: a click whose round
// falls strictly inside an Advance gap must be delivered at the next
// Advance — with Click.Round reporting its true arrival round — not
// silently dropped.
func TestClickSimGappedAdvance(t *testing.T) {
	cs := NewClickSim(rand.New(rand.NewSource(1)), 0.5, 30)
	cs.SetOutcome(func(adv int, price, ctr float64, round int) (bool, int) {
		return true, 2 // every ad clicks exactly 2 rounds after display
	})
	cs.Display(4, 1.5, 0.9, 0) // clicks at round 2
	cs.Display(5, 2.5, 0.9, 1) // clicks at round 3
	if got := cs.Advance(0); len(got) != 0 {
		t.Fatalf("round 0: %d clicks before any is due", len(got))
	}
	got := cs.Advance(7) // jump the gap over rounds 1–6
	if len(got) != 2 {
		t.Fatalf("gapped advance delivered %d clicks, want 2", len(got))
	}
	for _, c := range got {
		want := Click{Advertiser: 4, Price: 1.5, Displayed: 0, Round: 2}
		if c.Advertiser == 5 {
			want = Click{Advertiser: 5, Price: 2.5, Displayed: 1, Round: 3}
		}
		if c != want {
			t.Fatalf("gapped click %+v, want %+v", c, want)
		}
	}
	if cs.PendingCount() != 0 {
		t.Fatalf("pending = %d after gap delivery", cs.PendingCount())
	}
}

func TestLifecycleValidation(t *testing.T) {
	for i, tc := range []struct {
		n  int
		ev []LifecycleEvent
	}{
		{0, nil},
		{2, []LifecycleEvent{{Round: 0, Kind: LifecycleJoin, Advertiser: 2}}},
		{2, []LifecycleEvent{{Round: -1, Kind: LifecycleJoin, Advertiser: 0}}},
		{2, []LifecycleEvent{{Round: 0, Kind: LifecycleKind(9), Advertiser: 0}}},
		{2, []LifecycleEvent{{Round: 0, Kind: LifecycleRefresh, Advertiser: 0, Budget: -1}}},
	} {
		if _, err := NewLifecycle(tc.n, tc.ev); err == nil {
			t.Errorf("case %d: invalid schedule accepted", i)
		}
	}
}

func TestLifecycleApplyAndInitialActivity(t *testing.T) {
	lc, err := NewLifecycle(3, []LifecycleEvent{
		{Round: 10, Kind: LifecycleLeave, Advertiser: 0},
		{Round: 5, Kind: LifecycleJoin, Advertiser: 1},
		{Round: 20, Kind: LifecycleRefresh, Advertiser: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Advertiser 1's first join/leave event is a join after round 0: starts
	// inactive. 0 (leave first) and 2 (refresh only) start active.
	for i, want := range []bool{true, false, true} {
		if got := lc.InitiallyActive(i); got != want {
			t.Fatalf("InitiallyActive(%d) = %v, want %v", i, got, want)
		}
	}
	var seen []LifecycleEvent
	cursor := lc.Apply(0, 4, func(ev LifecycleEvent) { seen = append(seen, ev) })
	if len(seen) != 0 {
		t.Fatalf("events before round 5: %v", seen)
	}
	cursor = lc.Apply(cursor, 12, func(ev LifecycleEvent) { seen = append(seen, ev) })
	if len(seen) != 2 || seen[0].Round != 5 || seen[1].Round != 10 {
		t.Fatalf("events through round 12: %v", seen)
	}
	cursor = lc.Apply(cursor, 100, func(ev LifecycleEvent) { seen = append(seen, ev) })
	if len(seen) != 3 || cursor != 3 {
		t.Fatalf("events through round 100: %v (cursor %d)", seen, cursor)
	}
	if k := LifecycleJoin.String() + LifecycleLeave.String() + LifecycleRefresh.String(); k != "joinleaverefresh" {
		t.Fatalf("kind strings: %q", k)
	}
}

func TestGenerateLifecycle(t *testing.T) {
	w := Generate(DefaultConfig())
	lc, err := GenerateLifecycle(w, LifecycleConfig{Rounds: 500, ChurnFraction: 0.3, RefreshEvery: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if lc.NumAdvertisers() != len(w.Advertisers) {
		t.Fatalf("universe %d, want %d", lc.NumAdvertisers(), len(w.Advertisers))
	}
	joins, leaves, refreshes := 0, 0, 0
	lastRound := -1
	for _, ev := range lc.Events() {
		if ev.Round < lastRound {
			t.Fatal("events not round-ordered")
		}
		lastRound = ev.Round
		switch ev.Kind {
		case LifecycleJoin:
			joins++
		case LifecycleLeave:
			leaves++
		case LifecycleRefresh:
			refreshes++
		}
	}
	if joins == 0 || refreshes != 2*len(w.Advertisers) {
		t.Fatalf("joins %d, leaves %d, refreshes %d (want joins > 0, refreshes %d)",
			joins, leaves, refreshes, 2*len(w.Advertisers))
	}
	if leaves > joins {
		t.Fatalf("more leaves (%d) than joins (%d)", leaves, joins)
	}
	// Bad configs are rejected.
	for _, bad := range []LifecycleConfig{{Rounds: 0}, {Rounds: 10, ChurnFraction: 2}, {Rounds: 10, RefreshEvery: -1}} {
		if _, err := GenerateLifecycle(w, bad); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}
