package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig()
	w := Generate(cfg)
	if len(w.Advertisers) != cfg.NumAdvertisers {
		t.Fatalf("advertisers = %d", len(w.Advertisers))
	}
	if len(w.Interests) != cfg.NumPhrases || len(w.Rates) != cfg.NumPhrases {
		t.Fatal("phrase arrays wrong length")
	}
	if len(w.SlotFactors) != cfg.Slots {
		t.Fatal("slot factors wrong length")
	}
	for j := 1; j < len(w.SlotFactors); j++ {
		if w.SlotFactors[j] >= w.SlotFactors[j-1] {
			t.Fatal("slot factors must be strictly descending")
		}
	}
	for q, r := range w.Rates {
		if r <= 0 || r > 0.95 {
			t.Fatalf("rate[%d] = %v", q, r)
		}
		if q > 0 && w.Rates[q] > w.Rates[q-1] {
			t.Fatal("rates should decay with rank")
		}
	}
	for _, a := range w.Advertisers {
		if a.Bid < cfg.MinBid || a.Bid > cfg.MaxBid {
			t.Fatalf("bid %v out of range", a.Bid)
		}
		if a.Budget < cfg.MinBudget || a.Budget > cfg.MaxBudget {
			t.Fatalf("budget %v out of range", a.Budget)
		}
		if a.Quality <= 0 {
			t.Fatal("non-positive quality")
		}
	}
	if w.Quality != nil {
		t.Fatal("global-quality config should not build per-phrase qualities")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	for i := range a.Advertisers {
		if a.Advertisers[i] != b.Advertisers[i] {
			t.Fatal("same seed must generate identical advertisers")
		}
	}
	for q := range a.Interests {
		if !a.Interests[q].Equal(b.Interests[q]) {
			t.Fatal("same seed must generate identical interests")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.NumAdvertisers = 0 },
		func(c *Config) { c.NumTopics = 0 },
		func(c *Config) { c.MinBid = 10; c.MaxBid = 1 },
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			Generate(cfg)
		}()
	}
}

func TestPerPhraseQuality(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerPhraseQuality = true
	w := Generate(cfg)
	if w.Quality == nil {
		t.Fatal("expected per-phrase qualities")
	}
	if w.QualityFor(0, 0) != w.Quality[0][0] {
		t.Fatal("QualityFor should use the per-phrase table")
	}
	// Factors must actually vary across phrases for some advertiser.
	varies := false
	for i := 0; i < cfg.NumAdvertisers && !varies; i++ {
		if w.Quality[0][i] != w.Quality[1][i] {
			varies = true
		}
	}
	if !varies {
		t.Fatal("per-phrase qualities do not vary")
	}
}

func TestInterestOverlapStructure(t *testing.T) {
	w := Generate(DefaultConfig())
	// General advertisers make phrases overlap: some pair of phrases from
	// different topics must share a substantial advertiser set.
	maxOverlap := 0
	for a := 0; a < len(w.Interests); a++ {
		for b := a + 1; b < len(w.Interests); b++ {
			if ov := w.Interests[a].IntersectCount(w.Interests[b]); ov > maxOverlap {
				maxOverlap = ov
			}
		}
	}
	if maxOverlap < 10 {
		t.Fatalf("max phrase overlap = %d; workload lacks the sharing structure", maxOverlap)
	}
}

func TestSampleRoundRespectsRates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	w := Generate(cfg)
	const rounds = 20000
	counts := make([]int, cfg.NumPhrases)
	for r := 0; r < rounds; r++ {
		for q, occ := range w.SampleRound() {
			if occ {
				counts[q]++
			}
		}
	}
	for q, c := range counts {
		got := float64(c) / rounds
		if math.Abs(got-w.Rates[q]) > 0.02 {
			t.Fatalf("phrase %d: empirical rate %v vs %v", q, got, w.Rates[q])
		}
	}
}

func TestPerturbBidsStaysInRange(t *testing.T) {
	w := Generate(DefaultConfig())
	before := w.Bids()
	for i := 0; i < 50; i++ {
		w.PerturbBids(0.3)
	}
	after := w.Bids()
	changed := false
	for i := range after {
		if after[i] < w.Cfg.MinBid || after[i] > w.Cfg.MaxBid {
			t.Fatalf("bid %v escaped range", after[i])
		}
		if after[i] != before[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("PerturbBids changed nothing")
	}
}

func TestMatcher(t *testing.T) {
	m := NewMatcher([]string{"hiking boots", "high heels", "running shoes"})
	if id, ok := m.Match("  Hiking   BOOTS "); !ok || id != 0 {
		t.Fatalf("Match = %d %v", id, ok)
	}
	if _, ok := m.Match("sneakers"); ok {
		t.Fatal("unmatched query should miss")
	}
	m.AddRewrite("sneakers", "running shoes")
	if id, ok := m.Match("Sneakers"); !ok || id != 2 {
		t.Fatalf("rewrite Match = %d %v", id, ok)
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize("  FOO   bar\tbaz "); got != "foo bar baz" {
		t.Fatalf("Normalize = %q", got)
	}
}

func TestClickSimValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewClickSim(rand.New(rand.NewSource(1)), 0, 10)
}

func TestClickSimEventualClickRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cs := NewClickSim(rng, 0.5, 60)
	const n = 20000
	ctr := 0.35
	for i := 0; i < n; i++ {
		cs.Display(i, 1, ctr, 0)
	}
	clicks := 0
	for round := 0; round <= 60; round++ {
		clicks += len(cs.Advance(round))
	}
	got := float64(clicks) / n
	// Truncation at the horizon loses a negligible (1-0.5)^60 tail.
	if math.Abs(got-ctr) > 0.02 {
		t.Fatalf("eventual click rate %v, want ≈ %v", got, ctr)
	}
	if cs.PendingCount() != 0 {
		t.Fatalf("pending = %d after horizon", cs.PendingCount())
	}
}

func TestClickSimOutstanding(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cs := NewClickSim(rng, 0.3, 10)
	cs.Display(7, 2.5, 0.4, 0)
	cs.Display(8, 1.0, 0.4, 0)
	cs.Advance(0)
	prices, ctrs := cs.Outstanding(7, 2)
	if len(prices) > 1 {
		t.Fatalf("advertiser 7 has %d outstanding ads", len(prices))
	}
	if len(prices) == 1 {
		if prices[0] != 2.5 {
			t.Fatalf("price = %v", prices[0])
		}
		want := 0.4 * math.Pow(0.7, 2)
		if math.Abs(ctrs[0]-want) > 1e-12 {
			t.Fatalf("remaining ctr = %v, want %v", ctrs[0], want)
		}
	}
}

func TestRemainingCTR(t *testing.T) {
	if got := RemainingCTR(0.4, 0, 0.3, 10); got != 0.4 {
		t.Fatalf("age 0: %v", got)
	}
	if got := RemainingCTR(0.4, 10, 0.3, 10); got != 0 {
		t.Fatalf("at horizon: %v", got)
	}
	if got := RemainingCTR(0.4, -3, 0.3, 10); got != 0.4 {
		t.Fatalf("negative age: %v", got)
	}
}

// TestQuickClickNeverBeforeDisplayOrAfterHorizon: structural invariants of
// the click stream.
func TestQuickClickInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := NewClickSim(rng, 0.2+0.6*rng.Float64(), 1+rng.Intn(20))
		displayed := map[int]int{}
		for r := 0; r < 30; r++ {
			if rng.Intn(2) == 0 {
				id := rng.Intn(10)
				cs.Display(id, 1, rng.Float64(), r)
				displayed[id*100+r] = r
			}
			for _, c := range cs.Advance(r) {
				if c.Round != r {
					return false
				}
				if c.Round < c.Displayed || c.Round-c.Displayed >= cs.Horizon {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
