package sharedwd

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestNetServerEndToEnd exercises the whole network path through the
// public facade: NewNetServer over a real sharded fleet, queries over
// real HTTP, /v1/stats decoding back into Metrics, the live WebSocket
// feed carrying genuine round summaries, and a graceful Shutdown.
func TestNetServerEndToEnd(t *testing.T) {
	wcfg := DefaultWorkloadConfig()
	wcfg.NumAdvertisers = 200
	wcfg.NumPhrases = 16
	w := Must(GenerateWorkload(wcfg))

	ns, err := NewNetServer(w,
		WithShards(2),
		WithRoundInterval(2*time.Millisecond),
		WithRateLimit(10_000, 20_000))
	if err != nil {
		t.Fatalf("NewNetServer: %v", err)
	}
	addr := ns.Addr()
	if addr == "" {
		t.Fatal("NewNetServer returned without a bound address")
	}

	// Subscribe to the live feed before generating traffic, so real round
	// summaries flow to us.
	wsc, wsbr := dialLive(t, addr)
	defer wsc.Close()

	// Real queries through the matcher: phrase names match themselves.
	client := &http.Client{Timeout: 5 * time.Second}
	phrase := w.PhraseNames[0]
	var answered int
	for i := 0; i < 50; i++ {
		body := strings.NewReader(fmt.Sprintf(`{"query":%q,"timeout":"1s"}`, phrase))
		resp, err := client.Post("http://"+addr+"/v1/query", "application/json", body)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		var qr struct {
			Phrase int `json:"phrase"`
			Round  int `json:"round"`
		}
		err = json.NewDecoder(resp.Body).Decode(&qr)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("query %d: bad body: %v", i, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
		answered++
	}

	// A nonsense query is 404 ErrNoAuction on the wire.
	resp, err := client.Post("http://"+addr+"/v1/query", "application/json",
		strings.NewReader(`{"query":"zzzz no such phrase zzzz"}`))
	if err != nil {
		t.Fatalf("junk query: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("junk query status = %d, want 404", resp.StatusCode)
	}

	// /v1/stats decodes into Metrics and reflects the traffic.
	resp, err = client.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var m Metrics
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if m.Answered < int64(answered) {
		t.Fatalf("stats answered = %d, want ≥ %d", m.Answered, answered)
	}
	if m.TotalLatency.Count() < answered {
		t.Fatalf("latency samples = %d, want ≥ %d", m.TotalLatency.Count(), answered)
	}

	// /v1/metrics serves Prometheus text mentioning the same counter.
	resp, err = client.Get("http://" + addr + "/v1/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	promBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(promBody), "sharedwd_answered_total") {
		t.Fatal("prometheus exposition missing sharedwd_answered_total")
	}

	// The live feed delivered at least one real round summary.
	wsc.SetReadDeadline(time.Now().Add(5 * time.Second))
	var rs RoundSummary
	for {
		op, payload := readServerFrame(t, wsbr)
		if op != 0x1 {
			continue
		}
		if err := json.Unmarshal(payload, &rs); err != nil {
			t.Fatalf("live frame is not a RoundSummary: %v (%s)", err, payload)
		}
		break
	}
	if rs.Queries <= 0 || rs.Round < 0 {
		t.Fatalf("round summary carries no traffic: %+v", rs)
	}
	if rs.Shard < 0 || rs.Shard > 1 {
		t.Fatalf("round summary shard = %d, want 0 or 1", rs.Shard)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ns.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The subscriber sees the going-away close frame.
	wsc.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		op, p := readServerFrame(t, wsbr)
		if op != 0x8 {
			continue
		}
		if binary.BigEndian.Uint16(p) != 1001 {
			t.Fatalf("close status = %d, want 1001", binary.BigEndian.Uint16(p))
		}
		break
	}
}

// dialLive performs the WebSocket opening handshake against /v1/live.
func dialLive(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	key := base64.StdEncoding.EncodeToString([]byte("integrationtest!"))
	fmt.Fprintf(conn, "GET /v1/live HTTP/1.1\r\nHost: %s\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n\r\n", addr, key)
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil || !strings.Contains(status, "101") {
		t.Fatalf("handshake: %q (%v)", status, err)
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("handshake headers: %v", err)
		}
		if strings.TrimSpace(line) == "" {
			return conn, br
		}
	}
}

// readServerFrame reads one unmasked server WebSocket frame.
func readServerFrame(t *testing.T, br *bufio.Reader) (byte, []byte) {
	t.Helper()
	var hdr [2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		t.Fatalf("frame header: %v", err)
	}
	length := int(hdr[1] & 0x7F)
	if length == 126 {
		var ext [2]byte
		if _, err := io.ReadFull(br, ext[:]); err != nil {
			t.Fatalf("frame length: %v", err)
		}
		length = int(binary.BigEndian.Uint16(ext[:]))
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		t.Fatalf("frame payload: %v", err)
	}
	return hdr[0] & 0x0F, payload
}
