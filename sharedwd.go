// Package sharedwd is a from-scratch Go implementation of
// "Shared Winner Determination in Sponsored Search Auctions"
// (Martin & Halpern, ICDE 2009).
//
// Sponsored-search providers must solve winner determination — assigning k
// ad slots to the interested advertisers so as to maximize expected realized
// bids — for every search query, before the result page is returned. This
// library implements the paper's three techniques for doing that at high
// query volume, plus every substrate they depend on:
//
//   - Shared top-k aggregation (Section II): when simultaneous auctions
//     share advertisers, a single DAG of binary top-k merges computes all
//     auctions' top-k lists with far fewer aggregation operations than
//     per-auction scans. BuildSharedPlan runs the paper's fragment +
//     greedy-coverage heuristic; the underlying framework (A-plans, the
//     expected materialization cost model, exact planners, the set-cover
//     hardness reductions, and the Figure-5 complexity table per algebraic
//     structure) is exposed through the Plan/Instance types.
//
//   - Shared sorting (Section III): when the advertiser quality factor
//     varies per phrase, only bids are shared; BuildSortPlan constructs a
//     forest of on-demand, caching merge operators so that each shared
//     prefix of the descending-bid order is computed once per round, and
//     ThresholdTopK (Fagin–Lotem–Naor) consumes those streams to find each
//     auction's winners with instance-optimal early termination.
//
//   - Budget uncertainty (Section IV): ads displayed but not yet clicked
//     make remaining budgets uncertain. NewThrottler maintains anytime
//     Hoeffding upper/lower bounds on the throttled bid
//     b̂ = E[min(b, max(0, β−S)/m)], tightening largest-price-first;
//     Compare and TopKUncertain resolve winner determination without
//     computing most throttled bids exactly.
//
// The Engine ties the pieces into a round-based auction processor with GSP /
// VCG / first-price pricing, a delayed-click simulator, and strict budget
// accounting; the workload generator produces the topic-structured synthetic
// traces the benchmark harness (bench_test.go, cmd/fig4, cmd/fig5,
// cmd/gaming, cmd/auctionsim) runs on. See DESIGN.md for the full system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
package sharedwd

import (
	"math/rand"

	"sharedwd/internal/analytics"
	"sharedwd/internal/auction"
	"sharedwd/internal/bitset"
	"sharedwd/internal/budget"
	"sharedwd/internal/core"
	"sharedwd/internal/nonsep"
	"sharedwd/internal/plan"
	"sharedwd/internal/pricing"
	"sharedwd/internal/sharedagg"
	"sharedwd/internal/sharedsort"
	"sharedwd/internal/ta"
	"sharedwd/internal/topk"
	"sharedwd/internal/workload"
)

// Domain model (see internal/auction).
type (
	// Advertiser is one bidder: per-click bid, quality factor c_i, budget.
	Advertiser = auction.Advertiser
	// Assignment maps slots to advertisers with its expected value.
	Assignment = auction.Assignment
)

// SolveSeparable performs linear-time winner determination under the
// separability assumption ctr_ij = c_i·d_j.
func SolveSeparable(advertisers []Advertiser, slotFactors []float64) Assignment {
	return auction.SolveSeparable(advertisers, slotFactors)
}

// SolveGeneral performs exact winner determination for an arbitrary
// click-through matrix (maximum-weight bipartite matching).
func SolveGeneral(bids []float64, ctr [][]float64) Assignment {
	return auction.SolveGeneral(bids, ctr)
}

// Top-k aggregation primitives (see internal/topk).
type (
	// TopKList is a bounded descending list of scored advertisers.
	TopKList = topk.List
	// TopKEntry is one (advertiser, score) element.
	TopKEntry = topk.Entry
)

// NewTopKList returns an empty k-list.
func NewTopKList(k int) *TopKList { return topk.New(k) }

// MergeTopK is the binary top-k aggregation operator ⊕.
func MergeTopK(a, b *TopKList) *TopKList { return topk.Merge(a, b) }

// Shared aggregation planning (see internal/plan, internal/sharedagg).
type (
	// AggQuery is one aggregate query: advertiser set + search rate.
	AggQuery = plan.Query
	// AggInstance is a shared-aggregation problem instance.
	AggInstance = plan.Instance
	// AggPlan is an A-plan DAG of binary aggregations.
	AggPlan = plan.Plan
)

// NewAggInstance validates and builds a shared-aggregation instance.
func NewAggInstance(numVars int, queries []AggQuery) (*AggInstance, error) {
	return plan.NewInstance(numVars, queries)
}

// BuildSharedPlan runs the paper's two-stage heuristic (fragments + greedy
// expected-coverage completion) and returns a complete plan.
func BuildSharedPlan(inst *AggInstance) *AggPlan { return sharedagg.Build(inst) }

// BuildFragmentOnlyPlan is the stage-1-only ablation baseline.
func BuildFragmentOnlyPlan(inst *AggInstance) *AggPlan { return sharedagg.BuildFragmentOnly(inst) }

// BuildNaivePlan is the unshared per-query baseline.
func BuildNaivePlan(inst *AggInstance) *AggPlan { return plan.NaivePlan(inst) }

// ExecutePlan evaluates a plan for one round with the top-k merge operator:
// leaf(i) supplies advertiser i's singleton k-list; occurring selects the
// round's queries (nil = all). It returns per-query results and the number
// of aggregation nodes materialized.
func ExecutePlan(p *AggPlan, leaf func(v int) *TopKList, occurring []bool) (map[int]*TopKList, int) {
	return plan.Execute(p, leaf, topk.Merge, occurring)
}

// Shared sorting (see internal/sharedsort, internal/ta).
type (
	// SortPlan is a shared merge-sort forest with one root per phrase.
	SortPlan = sharedsort.Plan
	// SortOptions configures plan construction.
	SortOptions = sharedsort.Options
	// SortStream is a per-consumer cursor over a phrase's sorted stream.
	SortStream = sharedsort.Stream
	// TAStats reports threshold-algorithm work.
	TAStats = ta.Stats
)

// BuildSortPlan constructs a shared merge-sort plan over per-phrase
// advertiser interest sets with the paper's bottom-up greedy heuristic.
func BuildSortPlan(numAdvertisers int, interests []AdvertiserSet, rates []float64, opts SortOptions) (*SortPlan, error) {
	return sharedsort.Build(numAdvertisers, interests, rates, opts)
}

// ThresholdTopK runs the threshold algorithm over two descending sorted
// access paths with score(id) as the combining function.
func ThresholdTopK(k int, byBid, byQuality ta.Source, score func(id int) float64) (*TopKList, TAStats) {
	return ta.TopK(k, byBid, byQuality, score)
}

// Budget uncertainty (see internal/budget).
type (
	// OutstandingAd is a displayed ad awaiting a click.
	OutstandingAd = budget.OutstandingAd
	// Throttler maintains anytime bounds on a throttled bid.
	Throttler = budget.Throttler
	// BidInterval is a [lo, hi] bound on an uncertain throttled bid.
	BidInterval = budget.Interval
)

// NewThrottler builds a throttled-bid bound refiner for one advertiser.
func NewThrottler(id int, bid, budgetLeft float64, auctions int, ads []OutstandingAd) (*Throttler, error) {
	return budget.NewThrottler(id, bid, budgetLeft, auctions, ads)
}

// CompareThrottled orders two throttled bids by lazy bound refinement.
func CompareThrottled(a, b *Throttler) int {
	c, _ := budget.Compare(a, b)
	return c
}

// TopKThrottled selects the k highest throttled bids with lazy refinement.
func TopKThrottled(k int, ts []*Throttler) []*Throttler {
	return budget.TopKUncertain(k, ts).Winners
}

// ExactThrottledBid computes b̂ exactly by subset enumeration (small l).
func ExactThrottledBid(bid, budgetLeft float64, auctions int, ads []OutstandingAd) float64 {
	return budget.ExactThrottledBid(bid, budgetLeft, auctions, ads)
}

// Bidding-program analytics (see internal/analytics; the paper's §VII).
type (
	// AnalyticsService answers shared aggregate queries over phrase sets.
	AnalyticsService = analytics.Service
	// PhraseStats is one phrase's per-round base statistics.
	PhraseStats = analytics.PhraseStats
	// AnalyticsResult is the aggregate over one registered phrase set.
	AnalyticsResult = analytics.Result
)

// NewAnalytics creates an analytics service over a phrase universe.
func NewAnalytics(numPhrases int) *AnalyticsService { return analytics.New(numPhrases) }

// BuildDisjointPlan builds a shared plan whose every aggregation joins
// variable-disjoint children — required for multiset-semantics aggregates
// (sum, count) as opposed to idempotent ones (top-k, max).
func BuildDisjointPlan(inst *AggInstance) *AggPlan { return sharedagg.BuildDisjoint(inst) }

// NonSepResult is the outcome of pruned non-separable winner determination.
type NonSepResult = nonsep.Result

// SolveNonSeparable performs winner determination for an arbitrary
// click-through matrix via k²-pruning + Hungarian matching (the ICDE'08
// framework Section V adapts).
func SolveNonSeparable(bids []float64, ctr [][]float64) NonSepResult {
	return nonsep.Solve(bids, ctr)
}

// Pricing rules (see internal/pricing).
type (
	// PricingRule selects first-price, GSP, or laddered VCG.
	PricingRule = pricing.Rule
	// RankedBidder is an advertiser in effective-bid order for pricing.
	RankedBidder = pricing.Ranked
)

// The pricing rules.
const (
	FirstPrice = pricing.FirstPrice
	GSP        = pricing.GSP
	VCG        = pricing.VCG
)

// Prices computes per-click prices for the ranked winners under the rule.
func Prices(rule PricingRule, ranked []RankedBidder, slotFactors []float64) []float64 {
	return pricing.Prices(rule, ranked, slotFactors)
}

// Engine and workloads (see internal/core, internal/workload).
type (
	// Engine resolves rounds of simultaneous auctions.
	Engine = core.Engine
	// EngineConfig parameterizes the engine.
	EngineConfig = core.Config
	// EngineStats holds the engine's lifetime counters.
	EngineStats = core.Stats
	// RoundReport is one round's outcome.
	RoundReport = core.RoundReport
	// BudgetPolicy selects naive vs throttled bidding.
	BudgetPolicy = core.BudgetPolicy
	// SharingMode selects shared-plan vs independent resolution.
	SharingMode = core.SharingMode
	// SortEngine resolves rounds in the per-phrase-quality regime
	// (Section III: shared merge-sort + threshold algorithm).
	SortEngine = core.SortEngine
	// SortEngineStats holds the sort engine's counters.
	SortEngineStats = core.SortStats
	// Workload is a generated auction universe.
	Workload = workload.Workload
	// WorkloadConfig parameterizes workload generation.
	WorkloadConfig = workload.Config
	// Matcher maps raw queries to bid phrases (two-stage).
	Matcher = workload.Matcher
	// QueryStream generates raw search-query traffic for the matcher.
	QueryStream = workload.QueryStream
	// Trace is a recorded round sequence for replayable comparisons.
	Trace = workload.Trace
	// AdvertiserSet is a set of advertiser indices.
	AdvertiserSet = bitset.Set
)

// NewAdvertiserSet returns an empty set holding indices in [0, n).
func NewAdvertiserSet(n int) AdvertiserSet { return bitset.New(n) }

// AdvertiserSetOf returns a set of capacity n with the given members.
func AdvertiserSetOf(n int, members ...int) AdvertiserSet {
	return bitset.FromIndices(n, members...)
}

// Engine mode constants.
const (
	Naive             = core.Naive
	Throttled         = core.Throttled
	SharedAggregation = core.SharedAggregation
	Independent       = core.Independent
)

// DefaultEngineConfig returns a GSP, throttled, shared configuration.
func DefaultEngineConfig() EngineConfig { return core.DefaultConfig() }

// DefaultWorkloadConfig returns a mid-sized workload configuration.
func DefaultWorkloadConfig() WorkloadConfig { return workload.DefaultConfig() }

// GenerateWorkload builds a synthetic workload.
func GenerateWorkload(cfg WorkloadConfig) *Workload { return workload.Generate(cfg) }

// NewEngine builds an engine (and its offline shared plan) for a workload.
func NewEngine(w *Workload, cfg EngineConfig) (*Engine, error) { return core.New(w, cfg) }

// NewSortEngine builds the Section III pipeline (shared merge-sort feeding
// the threshold algorithm) for a per-phrase-quality workload.
func NewSortEngine(w *Workload, cfg EngineConfig) (*SortEngine, error) {
	return core.NewSortEngine(w, cfg)
}

// NewMatcher indexes bid phrases for two-stage query matching.
func NewMatcher(phrases []string) *Matcher { return workload.NewMatcher(phrases) }

// RecordTrace captures rounds of the workload into a replayable trace.
func RecordTrace(w *Workload, rounds int, walkScale float64) *Trace {
	return workload.Record(w, rounds, walkScale)
}

// NewQueryStream builds a raw-query generator over the workload's phrases.
func NewQueryStream(w *Workload, junkRate float64, seed int64) *QueryStream {
	return workload.NewQueryStream(w, junkRate, seed)
}

// RandomCoinFlipInstance reproduces the Figure-4 instance construction.
func RandomCoinFlipInstance(rng *rand.Rand, numVars, numQueries int, rate float64) *AggInstance {
	return plan.RandomCoinFlipInstance(rng, numVars, numQueries, rate)
}

// RunGamingScenario reproduces the Section-IV gaming demonstration.
func RunGamingScenario(seed int64, rounds int, policy BudgetPolicy) (core.GamingResult, error) {
	return core.RunGamingScenario(seed, rounds, policy)
}

// RunGamingExperiment averages the gaming scenario over reps seeds.
func RunGamingExperiment(seed int64, rounds, reps int, policy BudgetPolicy) (core.GamingResult, error) {
	return core.RunGamingExperiment(seed, rounds, reps, policy)
}
