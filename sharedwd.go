// Package sharedwd is a from-scratch Go implementation of
// "Shared Winner Determination in Sponsored Search Auctions"
// (Martin & Halpern, ICDE 2009).
//
// Sponsored-search providers must solve winner determination — assigning k
// ad slots to the interested advertisers so as to maximize expected realized
// bids — for every search query, before the result page is returned. This
// library implements the paper's three techniques for doing that at high
// query volume, plus every substrate they depend on:
//
//   - Shared top-k aggregation (Section II): when simultaneous auctions
//     share advertisers, a single DAG of binary top-k merges computes all
//     auctions' top-k lists with far fewer aggregation operations than
//     per-auction scans. BuildSharedPlan runs the paper's fragment +
//     greedy-coverage heuristic; the underlying framework (A-plans, the
//     expected materialization cost model, exact planners, the set-cover
//     hardness reductions, and the Figure-5 complexity table per algebraic
//     structure) is exposed through the Plan/Instance types.
//
//   - Shared sorting (Section III): when the advertiser quality factor
//     varies per phrase, only bids are shared; BuildSortPlan constructs a
//     forest of on-demand, caching merge operators so that each shared
//     prefix of the descending-bid order is computed once per round, and
//     ThresholdTopK (Fagin–Lotem–Naor) consumes those streams to find each
//     auction's winners with instance-optimal early termination.
//
//   - Budget uncertainty (Section IV): ads displayed but not yet clicked
//     make remaining budgets uncertain. NewThrottler maintains anytime
//     Hoeffding upper/lower bounds on the throttled bid
//     b̂ = E[min(b, max(0, β−S)/m)], tightening largest-price-first;
//     Compare and TopKUncertain resolve winner determination without
//     computing most throttled bids exactly.
//
// The Engine ties the pieces into a round-based auction processor with GSP /
// VCG / first-price pricing, a delayed-click simulator, and strict budget
// accounting; the Server wraps it in a concurrent online serving layer that
// admits raw queries, batches them into rounds, and answers each within its
// deadline; the workload generator produces the topic-structured synthetic
// traces the benchmark harness (bench_test.go, cmd/fig4, cmd/fig5,
// cmd/gaming, cmd/auctionsim, cmd/servedemo) runs on. See DESIGN.md for the
// full system inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// # Error contract
//
// Facade constructors validate their inputs and return an error on any
// violated invariant; none panic on bad caller input. Must wraps any
// (value, error) pair for examples and static configurations known to be
// valid. Methods on already-constructed values (Engine.Step, plan
// execution) treat caller contract violations — e.g. an occurrence vector
// of the wrong length — as programming errors and panic; each documents
// its invariants.
//
// Serving failures follow one taxonomy across the single-engine Server and
// the ShardedServer. Three sentinels classify every per-query failure:
// ErrOverloaded (the admission queue was full; retryable), ErrServerClosed
// (the server is shutting down; terminal), and ErrNoAuction (the query
// matched no bid phrase; a property of the query, not the server). Submit
// may wrap a sentinel — the sharded server attaches the serving shard and
// global phrase ID via *QueryError — but wrapping always preserves
// identity: test failures with errors.Is against the sentinels (or
// errors.Is(err, context.DeadlineExceeded) for deadline expiry), never
// with string matching, and recover routing context with errors.As.
//
// # Thread safety
//
// Server and ShardedServer are safe for concurrent use. Everything else —
// Engine, SortEngine, Workload, plans, lists, throttlers, streams — is
// single-goroutine unless its documentation says otherwise; the servers
// own the serialization of their engines and workloads. Matcher.Match is
// safe concurrently after configuration.
package sharedwd

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"sharedwd/internal/analytics"
	"sharedwd/internal/auction"
	"sharedwd/internal/binproto"
	"sharedwd/internal/bitset"
	"sharedwd/internal/budget"
	"sharedwd/internal/core"
	"sharedwd/internal/netserve"
	"sharedwd/internal/nonsep"
	"sharedwd/internal/plan"
	"sharedwd/internal/pricing"
	"sharedwd/internal/replan"
	"sharedwd/internal/serr"
	"sharedwd/internal/server"
	"sharedwd/internal/shard"
	"sharedwd/internal/sharedagg"
	"sharedwd/internal/sharedsort"
	"sharedwd/internal/ta"
	"sharedwd/internal/topk"
	"sharedwd/internal/workload"
)

// Must unwraps a constructor's (value, error) result, panicking on error.
// It is the thin escape hatch for examples, tests, and static
// configurations known to be valid:
//
//	l := sharedwd.Must(sharedwd.NewTopKList(4))
func Must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// Domain model (see internal/auction).
type (
	// Advertiser is one bidder: per-click bid, quality factor c_i, budget.
	Advertiser = auction.Advertiser
	// Assignment maps slots to advertisers with its expected value.
	Assignment = auction.Assignment
)

// SolveSeparable performs linear-time winner determination under the
// separability assumption ctr_ij = c_i·d_j.
func SolveSeparable(advertisers []Advertiser, slotFactors []float64) Assignment {
	return auction.SolveSeparable(advertisers, slotFactors)
}

// SolveGeneral performs exact winner determination for an arbitrary
// click-through matrix (maximum-weight bipartite matching).
func SolveGeneral(bids []float64, ctr [][]float64) Assignment {
	return auction.SolveGeneral(bids, ctr)
}

// Top-k aggregation primitives (see internal/topk).
type (
	// TopKList is a bounded descending list of scored advertisers. Not safe
	// for concurrent use.
	TopKList = topk.List
	// TopKEntry is one (advertiser, score) element.
	TopKEntry = topk.Entry
)

// NewTopKList returns an empty k-list. It returns an error unless k ≥ 1.
func NewTopKList(k int) (*TopKList, error) {
	if k < 1 {
		return nil, fmt.Errorf("sharedwd: top-k list needs k ≥ 1, got %d", k)
	}
	return topk.New(k), nil
}

// MergeTopK is the binary top-k aggregation operator ⊕. Both inputs must
// have the same k (an invariant of plan construction); mismatched lists
// are a programming error and panic.
func MergeTopK(a, b *TopKList) *TopKList { return topk.Merge(a, b) }

// Shared aggregation planning (see internal/plan, internal/sharedagg).
type (
	// AggQuery is one aggregate query: advertiser set + search rate.
	AggQuery = plan.Query
	// AggInstance is a shared-aggregation problem instance.
	AggInstance = plan.Instance
	// AggPlan is an A-plan DAG of binary aggregations.
	AggPlan = plan.Plan
)

// NewAggInstance validates and builds a shared-aggregation instance.
func NewAggInstance(numVars int, queries []AggQuery) (*AggInstance, error) {
	return plan.NewInstance(numVars, queries)
}

// BuildSharedPlan runs the paper's two-stage heuristic (fragments + greedy
// expected-coverage completion) and returns a complete, validated plan. It
// returns an error on a nil instance or if the built plan fails validation.
func BuildSharedPlan(inst *AggInstance) (*AggPlan, error) {
	return buildPlan("BuildSharedPlan", inst, sharedagg.Build)
}

// BuildFragmentOnlyPlan is the stage-1-only ablation baseline.
func BuildFragmentOnlyPlan(inst *AggInstance) (*AggPlan, error) {
	return buildPlan("BuildFragmentOnlyPlan", inst, sharedagg.BuildFragmentOnly)
}

// BuildNaivePlan is the unshared per-query baseline.
func BuildNaivePlan(inst *AggInstance) (*AggPlan, error) {
	return buildPlan("BuildNaivePlan", inst, plan.NaivePlan)
}

func buildPlan(name string, inst *AggInstance, build func(*AggInstance) *AggPlan) (*AggPlan, error) {
	if inst == nil {
		return nil, fmt.Errorf("sharedwd: %s of nil instance", name)
	}
	p := build(inst)
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("sharedwd: %s produced an invalid plan: %w", name, err)
	}
	return p, nil
}

// ExecutePlan evaluates a plan for one round with the top-k merge operator:
// leaf(i) supplies advertiser i's singleton k-list; occurring selects the
// round's queries (nil = all). It returns per-query results and the number
// of aggregation nodes materialized.
func ExecutePlan(p *AggPlan, leaf func(v int) *TopKList, occurring []bool) (map[int]*TopKList, int) {
	return plan.Execute(p, leaf, topk.Merge, occurring)
}

type (
	// AggProgram is the flat compilation of a complete plan: a
	// topologically ordered instruction stream over dense arrays, with
	// single-consumer chains fused into n-ary folds (DESIGN.md §8).
	AggProgram = plan.Program
	// AggRunner executes an AggProgram over dense top-k entry slabs with
	// zero steady-state allocations — the engine's production shared path.
	AggRunner = plan.Runner
)

// CompilePlan lowers a complete plan into its flat instruction stream. It
// returns an error on a nil or invalid plan; the plan must not grow after
// compilation.
func CompilePlan(p *AggPlan) (*AggProgram, error) {
	if p == nil {
		return nil, fmt.Errorf("sharedwd: CompilePlan of nil plan")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("sharedwd: CompilePlan of invalid plan: %w", err)
	}
	return plan.Compile(p), nil
}

// NewPlanRunner builds a reusable flat executor for the program with
// per-node run capacity k (slots+1 for auction use, matching top-k lists).
func NewPlanRunner(prog *AggProgram, k int) (*AggRunner, error) {
	if prog == nil {
		return nil, fmt.Errorf("sharedwd: NewPlanRunner of nil program")
	}
	if k <= 0 {
		return nil, fmt.Errorf("sharedwd: non-positive run capacity %d", k)
	}
	return plan.NewRunner(prog, k), nil
}

// Shared sorting (see internal/sharedsort, internal/ta).
type (
	// SortPlan is a shared merge-sort forest with one root per phrase.
	SortPlan = sharedsort.Plan
	// SortOptions configures plan construction.
	SortOptions = sharedsort.Options
	// SortStream is a per-consumer cursor over a phrase's sorted stream.
	SortStream = sharedsort.Stream
	// TAStats reports threshold-algorithm work.
	TAStats = ta.Stats
)

// BuildSortPlan constructs a shared merge-sort plan over per-phrase
// advertiser interest sets with the paper's bottom-up greedy heuristic.
func BuildSortPlan(numAdvertisers int, interests []AdvertiserSet, rates []float64, opts SortOptions) (*SortPlan, error) {
	return sharedsort.Build(numAdvertisers, interests, rates, opts)
}

// ThresholdTopK runs the threshold algorithm over two descending sorted
// access paths with score(id) as the combining function.
func ThresholdTopK(k int, byBid, byQuality ta.Source, score func(id int) float64) (*TopKList, TAStats) {
	return ta.TopK(k, byBid, byQuality, score)
}

// Budget uncertainty (see internal/budget).
type (
	// OutstandingAd is a displayed ad awaiting a click.
	OutstandingAd = budget.OutstandingAd
	// Throttler maintains anytime bounds on a throttled bid.
	Throttler = budget.Throttler
	// BidInterval is a [lo, hi] bound on an uncertain throttled bid.
	BidInterval = budget.Interval
)

// NewThrottler builds a throttled-bid bound refiner for one advertiser.
func NewThrottler(id int, bid, budgetLeft float64, auctions int, ads []OutstandingAd) (*Throttler, error) {
	return budget.NewThrottler(id, bid, budgetLeft, auctions, ads)
}

// CompareThrottled orders two throttled bids by lazy bound refinement.
func CompareThrottled(a, b *Throttler) int {
	c, _ := budget.Compare(a, b)
	return c
}

// TopKThrottled selects the k highest throttled bids with lazy refinement.
func TopKThrottled(k int, ts []*Throttler) []*Throttler {
	return budget.TopKUncertain(k, ts).Winners
}

// ExactThrottledBid computes b̂ exactly by subset enumeration (small l).
func ExactThrottledBid(bid, budgetLeft float64, auctions int, ads []OutstandingAd) float64 {
	return budget.ExactThrottledBid(bid, budgetLeft, auctions, ads)
}

// Bidding-program analytics (see internal/analytics; the paper's §VII).
type (
	// AnalyticsService answers shared aggregate queries over phrase sets.
	AnalyticsService = analytics.Service
	// PhraseStats is one phrase's per-round base statistics.
	PhraseStats = analytics.PhraseStats
	// AnalyticsResult is the aggregate over one registered phrase set.
	AnalyticsResult = analytics.Result
)

// NewAnalytics creates an analytics service over a phrase universe. It
// returns an error unless numPhrases ≥ 1. The service is single-goroutine.
func NewAnalytics(numPhrases int) (*AnalyticsService, error) {
	if numPhrases <= 0 {
		return nil, fmt.Errorf("sharedwd: analytics needs a positive phrase universe, got %d", numPhrases)
	}
	return analytics.New(numPhrases), nil
}

// BuildDisjointPlan builds a shared plan whose every aggregation joins
// variable-disjoint children — required for multiset-semantics aggregates
// (sum, count) as opposed to idempotent ones (top-k, max).
func BuildDisjointPlan(inst *AggInstance) (*AggPlan, error) {
	return buildPlan("BuildDisjointPlan", inst, sharedagg.BuildDisjoint)
}

// NonSepResult is the outcome of pruned non-separable winner determination.
type NonSepResult = nonsep.Result

// SolveNonSeparable performs winner determination for an arbitrary
// click-through matrix via k²-pruning + Hungarian matching (the ICDE'08
// framework Section V adapts).
func SolveNonSeparable(bids []float64, ctr [][]float64) NonSepResult {
	return nonsep.Solve(bids, ctr)
}

// Pricing rules (see internal/pricing).
type (
	// PricingRule selects first-price, GSP, or laddered VCG.
	PricingRule = pricing.Rule
	// RankedBidder is an advertiser in effective-bid order for pricing.
	RankedBidder = pricing.Ranked
)

// The pricing rules.
const (
	FirstPrice = pricing.FirstPrice
	GSP        = pricing.GSP
	VCG        = pricing.VCG
)

// Prices computes per-click prices for the ranked winners under the rule.
func Prices(rule PricingRule, ranked []RankedBidder, slotFactors []float64) []float64 {
	return pricing.Prices(rule, ranked, slotFactors)
}

// Engine and workloads (see internal/core, internal/workload).
type (
	// Engine resolves rounds of simultaneous auctions. Single-goroutine:
	// Step, Stats, Report, Drain, and Close must all be called from one
	// goroutine (the Server owns that serialization in the online setting).
	Engine = core.Engine
	// EngineConfig parameterizes the engine.
	EngineConfig = core.Config
	// EngineStats holds one engine's lifetime counters; Add combines
	// counters from multiple engines (Metrics does this per fleet).
	EngineStats = core.Stats
	// RoundReport is one round's outcome. Its slices view engine scratch
	// overwritten by the next Step; copy what you keep.
	RoundReport = core.RoundReport
	// BudgetPolicy selects naive vs throttled bidding.
	BudgetPolicy = core.BudgetPolicy
	// SharingMode selects shared-plan vs independent resolution.
	SharingMode = core.SharingMode
	// SortEngine resolves rounds in the per-phrase-quality regime
	// (Section III: shared merge-sort + threshold algorithm).
	// Single-goroutine, like Engine.
	SortEngine = core.SortEngine
	// SortEngineStats holds the sort engine's counters.
	SortEngineStats = core.SortStats
	// Workload is a generated auction universe. Not safe for concurrent
	// use; owned by whichever engine or server steps it.
	Workload = workload.Workload
	// WorkloadConfig parameterizes workload generation.
	WorkloadConfig = workload.Config
	// Matcher maps raw queries to bid phrases (two-stage). Match is safe
	// for concurrent use once rewrites are configured.
	Matcher = workload.Matcher
	// QueryStream generates raw search-query traffic for the matcher.
	// Single-goroutine; give each load generator its own stream.
	QueryStream = workload.QueryStream
	// Trace is a recorded round sequence for replayable comparisons.
	Trace = workload.Trace
	// AdvertiserSet is a set of advertiser indices. Not safe for
	// concurrent mutation.
	AdvertiserSet = bitset.Set
)

// Online serving layer (see internal/server, internal/shard).
type (
	// Server is the long-lived concurrent round server: it admits raw
	// queries through a bounded queue, batches them into engine rounds,
	// and wakes each caller with its auction's outcome. Safe for
	// concurrent use.
	Server = server.Server
	// ServerConfig parameterizes the server (round interval, batch
	// threshold, queue depth, wrapped engine configuration).
	ServerConfig = server.Config
	// ShardedServer partitions the bid-phrase universe across N engine
	// shards, each with its own admission queue and round loop, with
	// cross-shard advertiser budgets held exact by a central atomic
	// ledger. Safe for concurrent use.
	ShardedServer = shard.Server
	// ShardRouter fixes the phrase → shard assignment at construction.
	ShardRouter = shard.Router
	// HashShardRouter is the stable default router (FNV-1a on the
	// normalized phrase name).
	HashShardRouter = shard.HashRouter
	// FragmentShardRouter co-locates phrases sharing Section II plan
	// fragments to preserve intra-shard sharing.
	FragmentShardRouter = shard.FragmentRouter
	// BudgetLedger is the cross-shard budget authority: per-advertiser
	// remaining/spent reads and the atomic TryCharge that keeps the
	// Section IV invariant exact fleet-wide.
	BudgetLedger = budget.Ledger
	// PacerConfig tunes the online budget-pacing controller (horizon,
	// feedback gain, step clamp, factor floor). See WithPacing.
	PacerConfig = budget.PacerConfig
	// Pacer is the shared pacing controller: it adapts one throttle factor
	// per advertiser each round so budgets exhaust smoothly over the
	// configured horizon instead of front-loaded.
	Pacer = budget.Pacer
	// PacingMetrics is the pacing observability snapshot carried in
	// Metrics (spend curve, throttle activity, pacing-error distribution).
	PacingMetrics = budget.PacingMetrics
	// Lifecycle is an advertiser lifecycle schedule: join/leave campaign
	// windows consumed by the engines and budget-refresh epochs consumed
	// by the pacing controller. See WithLifecycle.
	Lifecycle = workload.Lifecycle
	// LifecycleEvent is one advertiser lifecycle change, effective at the
	// start of its round.
	LifecycleEvent = workload.LifecycleEvent
	// LifecycleKind classifies a lifecycle event (join, leave, refresh).
	LifecycleKind = workload.LifecycleKind
	// LifecycleConfig parameterizes GenerateLifecycle's synthetic
	// day-in-the-life schedules.
	LifecycleConfig = workload.LifecycleConfig
	// Metrics is the unified observability view shared by Server,
	// ShardedServer, and per-shard workers: lifetime counters, queue
	// depth, per-stage latency distributions, derived rates, and the
	// engine's own statistics. Metrics from different workers combine
	// with Merge.
	Metrics = server.Metrics
	// LatencyDist is one serving stage's mergeable latency distribution
	// (exact moments plus a fixed-geometry histogram for quantiles).
	LatencyDist = server.LatencyDist
	// RoundSummary is the per-round event a worker's round loop publishes
	// to the live round feed (the network tier's WebSocket /v1/live
	// broadcasts it as JSON).
	RoundSummary = server.RoundSummary
	// QueryResult is one answered query: phrase, round, slot assignment
	// with per-click prices, per-stage waits, and the serving shard.
	QueryResult = server.Result
	// QueryError attaches routing context (shard, global phrase ID) to a
	// per-query serving failure; errors.Is still matches the wrapped
	// sentinel and errors.As recovers the context.
	QueryError = serr.QueryError
	// ReplanConfig parameterizes online adaptive replanning: the rate
	// tracker's decay, the drift triggers (max per-phrase rate ratio,
	// mean Bernoulli relative entropy), and the warmup/cadence/cooldown
	// hysteresis. See WithReplanner and internal/replan.
	ReplanConfig = replan.Config
	// RateSample is one phrase's observed arrival-rate estimate in a
	// Metrics.Observed report (global phrase ID + rate in [0,1]).
	RateSample = server.RateSample
)

// Serving errors — the package-wide taxonomy every Submit failure reduces
// to (see the package comment's Error contract). The server and shard
// packages alias these same values, so errors.Is matches across spellings.
var (
	// ErrOverloaded: the admission queue was full and the query was shed.
	// Retryable after backoff.
	ErrOverloaded = serr.ErrOverloaded
	// ErrServerClosed: the server no longer admits queries. Terminal.
	ErrServerClosed = serr.ErrClosed
	// ErrNoAuction: the query matched no bid phrase, so no auction ran.
	// A property of the query; retrying it unchanged cannot succeed.
	ErrNoAuction = serr.ErrNoAuction
)

// NewAdvertiserSet returns an empty set holding indices in [0, n).
func NewAdvertiserSet(n int) AdvertiserSet { return bitset.New(n) }

// AdvertiserSetOf returns a set of capacity n with the given members.
func AdvertiserSetOf(n int, members ...int) AdvertiserSet {
	return bitset.FromIndices(n, members...)
}

// Engine mode constants.
const (
	Naive             = core.Naive
	Throttled         = core.Throttled
	SharedAggregation = core.SharedAggregation
	Independent       = core.Independent
)

// DefaultEngineConfig returns a GSP, throttled, shared configuration.
func DefaultEngineConfig() EngineConfig { return core.DefaultConfig() }

// DefaultServerConfig returns the default serving configuration: 5 ms
// rounds, early close at 256 pending queries, a 4096-deep admission queue,
// and the default engine configuration with the incremental cache on.
func DefaultServerConfig() ServerConfig { return server.DefaultConfig() }

// DefaultWorkloadConfig returns a mid-sized workload configuration.
func DefaultWorkloadConfig() WorkloadConfig { return workload.DefaultConfig() }

// HighOverlapWorkloadConfig returns a broad-match-heavy configuration (85%
// of advertisers match every phrase), the high-overlap regime where shared
// winner determination beats independent scans on wall-clock.
func HighOverlapWorkloadConfig() WorkloadConfig { return workload.HighOverlapConfig() }

// GenerateWorkload builds a synthetic workload. It returns an error when
// the configuration is invalid (non-positive dimensions, inverted ranges).
func GenerateWorkload(cfg WorkloadConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return workload.Generate(cfg), nil
}

// An EngineOption adjusts an EngineConfig at construction. Options are
// applied in order over DefaultEngineConfig, so later options win; start
// from an explicit struct with WithConfig.
type EngineOption func(*EngineConfig)

// WithConfig replaces the whole configuration — the bridge for callers
// that assemble an EngineConfig struct (DefaultEngineConfig remains the
// canonical starting point). Options after it apply on top.
func WithConfig(cfg EngineConfig) EngineOption { return func(c *EngineConfig) { *c = cfg } }

// WithPricing selects the pricing rule (FirstPrice, GSP, VCG).
func WithPricing(rule PricingRule) EngineOption { return func(c *EngineConfig) { c.Pricing = rule } }

// WithBudgetPolicy selects naive vs throttled bidding (Section IV).
func WithBudgetPolicy(p BudgetPolicy) EngineOption { return func(c *EngineConfig) { c.Policy = p } }

// WithSharing selects shared-plan vs independent winner determination.
func WithSharing(m SharingMode) EngineOption { return func(c *EngineConfig) { c.Sharing = m } }

// WithWorkers sets the engine's worker-pool size. With n > 1 each round's
// leaf scoring and the compiled plan's dirty cone run on a persistent pool
// through the cost-aware frontier scheduler (Span-balanced chunks plus
// dependency release; small cones still run inline, so the cached steady
// state is unaffected). Remember to Close the engine. For a sharded server
// prefer WithTotalWorkers, which splits one core budget across shards.
func WithWorkers(n int) EngineOption { return func(c *EngineConfig) { c.Workers = n } }

// WithIncrementalCache toggles cross-round plan-result caching: only the
// dirty cone of changed bids is re-materialized each round.
func WithIncrementalCache(on bool) EngineOption {
	return func(c *EngineConfig) { c.IncrementalCache = on }
}

// WithReserve sets the per-click reserve price (0 disables it).
func WithReserve(price float64) EngineOption { return func(c *EngineConfig) { c.Reserve = price } }

// WithClickModel sets the delayed-click hazard and horizon.
func WithClickModel(hazard float64, horizon int) EngineOption {
	return func(c *EngineConfig) {
		c.ClickHazard = hazard
		c.ClickHorizon = horizon
	}
}

// NewEngine builds an engine (and its offline shared plan) for a workload,
// starting from DefaultEngineConfig and applying the options in order:
//
//	eng, err := sharedwd.NewEngine(w,
//	    sharedwd.WithPricing(sharedwd.VCG),
//	    sharedwd.WithBudgetPolicy(sharedwd.Throttled),
//	    sharedwd.WithWorkers(4),
//	    sharedwd.WithIncrementalCache(true))
//
// It returns an error for invalid configurations or a per-phrase-quality
// workload (use NewSortEngine there).
func NewEngine(w *Workload, opts ...EngineOption) (*Engine, error) {
	cfg := core.DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return core.New(w, cfg)
}

// NewSortEngine builds the Section III pipeline (shared merge-sort feeding
// the threshold algorithm) for a per-phrase-quality workload. Options as
// for NewEngine; it returns an error for invalid configurations or a
// global-quality workload.
func NewSortEngine(w *Workload, opts ...EngineOption) (*SortEngine, error) {
	cfg := core.DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return core.NewSortEngine(w, cfg)
}

// serveConfig is the ServerOption target: the per-worker serving
// configuration plus the sharding knobs that only the sharded constructor
// consumes.
type serveConfig struct {
	srv          server.Config
	shards       int
	router       shard.Router
	totalWorkers int
	net          netserve.Config
	bin          binproto.Config
	transports   []Transport // nil means HTTP only (the historical default)
}

// serves reports whether the configuration enables transport t.
func (c *serveConfig) serves(t Transport) bool {
	if c.transports == nil {
		return t == TransportHTTP
	}
	for _, have := range c.transports {
		if have == t {
			return true
		}
	}
	return false
}

// A ServerOption adjusts the serving configuration at construction,
// applied in order over DefaultServerConfig. The same options configure
// NewServer and NewShardedServer; the sharding options (WithShards,
// WithShardRouter) are meaningful only to the latter.
type ServerOption func(*serveConfig)

// WithServerConfig replaces the whole per-worker serving configuration
// (round interval, batch threshold, queue depth, engine); options after it
// apply on top. Sharding options are untouched.
func WithServerConfig(cfg ServerConfig) ServerOption { return func(c *serveConfig) { c.srv = cfg } }

// WithRoundInterval sets the ticker period at which rounds close — the
// paper's §I latency/sharing tradeoff knob (see TuneRoundInterval).
func WithRoundInterval(d time.Duration) ServerOption {
	return func(c *serveConfig) { c.srv.RoundInterval = d }
}

// WithMaxBatch closes rounds early once n requests are pending (0 disables
// the size threshold).
func WithMaxBatch(n int) ServerOption { return func(c *serveConfig) { c.srv.MaxBatch = n } }

// WithQueueDepth bounds the admission queue — each shard gets its own
// queue of this depth; beyond it Submit sheds with ErrOverloaded.
func WithQueueDepth(n int) ServerOption { return func(c *serveConfig) { c.srv.QueueDepth = n } }

// WithBidWalk applies one step of the workload's bid random walk after
// every round (automated bidding programs running between rounds).
func WithBidWalk(scale float64) ServerOption {
	return func(c *serveConfig) { c.srv.BidWalkScale = scale }
}

// WithServerEngine applies engine options to the server's wrapped engine.
func WithServerEngine(opts ...EngineOption) ServerOption {
	return func(c *serveConfig) {
		for _, opt := range opts {
			opt(&c.srv.Engine)
		}
	}
}

// DefaultReplanConfig returns the conservative replanning configuration:
// drift checks every 50 rounds after a 200-round warmup, a 3× per-phrase
// rate ratio or 0.15 nat mean divergence trigger, and a 400-round post-swap
// cooldown.
func DefaultReplanConfig() ReplanConfig { return replan.DefaultConfig() }

// WithReplanner turns on online adaptive replanning for NewServer and
// NewShardedServer: each worker's round loop tracks the arrival rates it
// actually observes, and when they drift from the rates the live shared
// plan was optimized for, a fresh plan is compiled on a background
// goroutine and hot-swapped into the engine at a round boundary. Admission
// never pauses, and auction results are unchanged — all complete plans over
// the same queries are A-equivalent — only the per-round aggregation cost
// recovers. Requires the (default) SharedAggregation engine; under sharding
// each shard replans independently against its own partition's traffic.
// Metrics then reports Observed rates, PlanSwaps, ReplanBuilds, and
// PlanSwapLatency.
func WithReplanner(cfg ReplanConfig) ServerOption {
	return func(c *serveConfig) {
		rc := cfg
		c.srv.Replan = &rc
	}
}

// ObservedRates projects a Metrics' observed arrival-rate samples onto a
// dense per-phrase vector over a global phrase universe of size numPhrases
// (phrases with no sample are 0). It returns an error when the metrics
// carry no samples — the server was not built with WithReplanner, or no
// round has closed yet.
func ObservedRates(m Metrics, numPhrases int) ([]float64, error) {
	if len(m.Observed) == 0 {
		return nil, fmt.Errorf("sharedwd: metrics carry no observed rates (server not built with WithReplanner?)")
	}
	return m.ObservedRates(numPhrases), nil
}

// WithShards sets the engine-shard count for NewShardedServer (default:
// one shard per available CPU). NewServer rejects n > 1 — build a
// ShardedServer to scale out.
func WithShards(n int) ServerOption { return func(c *serveConfig) { c.shards = n } }

// WithShardRouter selects the phrase → shard assignment policy for
// NewShardedServer: HashShardRouter (default) for stable name-hash
// routing, FragmentShardRouter to co-locate phrases that share plan
// fragments.
func WithShardRouter(r ShardRouter) ServerOption { return func(c *serveConfig) { c.router = r } }

// Advertiser lifecycle event kinds (see Lifecycle).
const (
	LifecycleJoin    = workload.LifecycleJoin
	LifecycleLeave   = workload.LifecycleLeave
	LifecycleRefresh = workload.LifecycleRefresh
)

// DefaultPacerConfig returns the pacing controller defaults: a 1000-round
// horizon with a gentle multiplicative feedback gain. See
// internal/budget.DefaultPacerConfig.
func DefaultPacerConfig() PacerConfig { return budget.DefaultPacerConfig() }

// NewLifecycle validates and orders an advertiser lifecycle schedule over
// a universe of n advertisers. Events apply at the start of their round;
// advertisers whose first event is a join after round 0 start inactive.
func NewLifecycle(n int, events []LifecycleEvent) (*Lifecycle, error) {
	return workload.NewLifecycle(n, events)
}

// GenerateLifecycle builds a synthetic day-in-the-life schedule for the
// workload's advertisers: churn campaign windows plus periodic budget
// refreshes. See LifecycleConfig.
func GenerateLifecycle(w *Workload, cfg LifecycleConfig) (*Lifecycle, error) {
	return workload.GenerateLifecycle(w, cfg)
}

// WithPacing turns on the online budget-pacing controller: one shared
// Pacer over the fleet's budget authority adapts a per-advertiser throttle
// factor each round so budgets last the configured horizon. Works on both
// NewServer (a ledger is installed automatically) and NewShardedServer
// (the controller is shared across shards over the central ledger).
func WithPacing(cfg PacerConfig) ServerOption {
	return func(c *serveConfig) { c.srv.Pacing = &cfg }
}

// WithLifecycle attaches an advertiser lifecycle schedule: engines replay
// its join/leave events at round boundaries, and the pacing controller
// (when WithPacing is also given) applies its budget-refresh epochs.
func WithLifecycle(lc *Lifecycle) ServerOption {
	return func(c *serveConfig) { c.srv.Lifecycle = lc }
}

// WithTotalWorkers sets a total core budget for serving. NewShardedServer
// splits it across the shards — each shard's engine gets an equal share of
// pool workers (remainder to the lowest shards, minimum one each) — so the
// shards × workers trade-off is explicit: the same budget can run as many
// single-worker shards or one shard with a wide pool, and on overlap-heavy
// workloads the wide pool wins (see BenchmarkParallelScaling). NewServer
// gives its single engine the whole budget. Zero (the default) leaves
// per-engine WithWorkers settings untouched.
func WithTotalWorkers(n int) ServerOption { return func(c *serveConfig) { c.totalWorkers = n } }

// NewServer builds the engine for the workload and starts the serving
// round loop:
//
//	srv, err := sharedwd.NewServer(w,
//	    sharedwd.WithRoundInterval(5*time.Millisecond),
//	    sharedwd.WithQueueDepth(4096))
//	defer srv.Close()
//	res, err := srv.Submit(ctx, "hiking boots")
//
// The server takes ownership of the workload; do not mutate or step it
// while the server runs. Close resolves in-flight requests, drains
// outstanding clicks, and stops every goroutine the server started.
// NewServer is the single-engine constructor; it returns an error if
// WithShards(n > 1) was given (use NewShardedServer).
func NewServer(w *Workload, opts ...ServerOption) (*Server, error) {
	cfg := applyServerOptions(opts)
	if cfg.shards > 1 {
		return nil, fmt.Errorf("sharedwd: NewServer is single-engine; use NewShardedServer for %d shards", cfg.shards)
	}
	if cfg.totalWorkers > 0 {
		cfg.srv.Engine.Workers = cfg.totalWorkers
	}
	return server.New(w, cfg.srv)
}

// NewShardedServer partitions the workload's phrase universe across engine
// shards — one admission queue + round loop + engine per shard, advertiser
// budgets shared through a central atomic ledger — and starts serving:
//
//	srv, err := sharedwd.NewShardedServer(w,
//	    sharedwd.WithShards(4),
//	    sharedwd.WithShardRouter(sharedwd.FragmentShardRouter{}),
//	    sharedwd.WithRoundInterval(5*time.Millisecond))
//	defer srv.Close()
//	res, err := srv.Submit(ctx, "hiking boots")
//
// Without WithShards it uses one shard per available CPU. Submit, Metrics,
// and Close mirror Server's; results additionally carry the serving shard,
// and failures wrap shard + phrase context as *QueryError. The server
// takes ownership of the workload.
func NewShardedServer(w *Workload, opts ...ServerOption) (*ShardedServer, error) {
	cfg := applyServerOptions(opts)
	scfg := shard.DefaultConfig()
	scfg.Worker = cfg.srv
	if cfg.shards > 0 {
		scfg.Shards = cfg.shards
	}
	scfg.Router = cfg.router
	scfg.TotalWorkers = cfg.totalWorkers
	return shard.New(w, scfg)
}

func applyServerOptions(opts []ServerOption) serveConfig {
	cfg := serveConfig{srv: server.DefaultConfig()}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// Network serving tier (see internal/netserve, internal/binproto).
type (
	// NetServerConfig tunes the HTTP tier (listen address, timeouts,
	// body bound, rate limit, live-feed queue depth).
	NetServerConfig = netserve.Config
	// BinaryServerConfig tunes the binary tier (listen address, frame and
	// in-flight bounds, timeout clamp).
	BinaryServerConfig = binproto.Config
)

// Transport selects which network edges a NetServer serves.
type Transport int

const (
	// TransportHTTP is the HTTP/JSON tier: POST /v1/query and
	// /v1/query/batch submit queries, GET /v1/stats and GET /v1/metrics
	// expose the merged fleet Metrics (JSON and Prometheus text), and
	// GET /v1/live is a WebSocket pushing per-round summaries.
	TransportHTTP Transport = iota
	// TransportBinary is the length-prefixed binary protocol with
	// connection multiplexing — the high-throughput edge (see
	// internal/binproto and NewBinaryClient).
	TransportBinary
)

// NetServer is the network front end over a sharded round server: one
// fleet (ShardedServer + central budget ledger) behind up to two
// transports — the HTTP/JSON tier and the binary tier — serving identical
// results under one error taxonomy. Build with NewNetServer; Addr and
// BinaryAddr report the bound edges ("" for one not serving); Shutdown
// drains every edge and then the fleet.
type NetServer struct {
	http    *netserve.Server // nil unless TransportHTTP
	binary  *binproto.Server // nil unless TransportBinary
	backend server.Backend
	hub     *netserve.Hub
}

// Addr returns the HTTP tier's bound listen address, or "" when the HTTP
// transport is not serving.
func (ns *NetServer) Addr() string {
	if ns.http == nil {
		return ""
	}
	return ns.http.Addr()
}

// BinaryAddr returns the binary tier's bound listen address, or "" when
// the binary transport is not serving.
func (ns *NetServer) BinaryAddr() string {
	if ns.binary == nil {
		return ""
	}
	return ns.binary.Addr()
}

// Hub returns the live round-feed hub (for tests and embedding).
func (ns *NetServer) Hub() *netserve.Hub { return ns.hub }

// Err returns the HTTP tier's terminal serve error, if any.
func (ns *NetServer) Err() error {
	if ns.http == nil {
		return nil
	}
	return ns.http.Err()
}

// Shutdown drains the whole front end: both edges stop accepting, every
// admitted request — HTTP in-flight handlers and binary in-flight frames
// alike — is answered through the normal worker drain (bounded by ctx),
// live subscribers get a going-away close frame, and finally the fleet
// itself drains and settles its budgets. Safe to call once.
func (ns *NetServer) Shutdown(ctx context.Context) error {
	// Drain the binary edge first, without closing the shared backend —
	// its in-flight frames need the workers still serving.
	var err error
	if ns.binary != nil {
		err = ns.binary.Drain(ctx)
	}
	if ns.http != nil {
		// The HTTP tier's Shutdown closes the hub and then the backend.
		if herr := ns.http.Shutdown(ctx); err == nil {
			err = herr
		}
	} else {
		ns.hub.Close()
		ns.backend.Close()
	}
	return err
}

// Close tears the front end down without waiting for in-flight requests.
// Use Shutdown for a graceful drain.
func (ns *NetServer) Close() error {
	var err error
	if ns.binary != nil {
		err = ns.binary.Close()
	}
	if ns.http != nil {
		if herr := ns.http.Close(); err == nil {
			err = herr
		}
	} else {
		ns.hub.Close()
		ns.backend.Close()
	}
	return err
}

// WithListenAddr sets the HTTP tier's listen address for NewNetServer
// (default 127.0.0.1:0 — a random loopback port; use ":8080" to serve
// externally). Ignored by NewServer and NewShardedServer.
func WithListenAddr(addr string) ServerOption {
	return func(c *serveConfig) { c.net.Addr = addr }
}

// WithTransport selects which network edges NewNetServer serves — any of
// TransportHTTP and TransportBinary, in any combination. Without it the
// server speaks HTTP only (the historical default); WithBinaryAddr
// implies adding TransportBinary without restating the HTTP choice.
func WithTransport(transports ...Transport) ServerOption {
	return func(c *serveConfig) {
		c.transports = append([]Transport(nil), transports...)
	}
}

// WithBinaryAddr sets the binary tier's listen address for NewNetServer
// (default 127.0.0.1:0) and enables TransportBinary alongside whatever
// transports are already selected. Ignored by NewServer and
// NewShardedServer.
func WithBinaryAddr(addr string) ServerOption {
	return func(c *serveConfig) {
		c.bin.Addr = addr
		if !c.serves(TransportBinary) {
			if c.transports == nil {
				c.transports = []Transport{TransportHTTP}
			}
			c.transports = append(c.transports, TransportBinary)
		}
	}
}

// WithBinaryConfig replaces the whole binary-tier configuration for
// NewNetServer; WithBinaryAddr after it applies on top. It does not by
// itself enable the binary transport — combine with WithTransport or
// WithBinaryAddr.
func WithBinaryConfig(cfg BinaryServerConfig) ServerOption {
	return func(c *serveConfig) { c.bin = cfg }
}

// WithRateLimit enables the network tier's per-client token bucket at rps
// requests per second with bursts of burst (burst ≤ 0 defaults to 2×rps).
// Rate-limited requests get 429 before reaching the admission queue.
// Ignored by NewServer and NewShardedServer.
func WithRateLimit(rps float64, burst int) ServerOption {
	return func(c *serveConfig) {
		c.net.RateLimit = rps
		c.net.RateBurst = burst
	}
}

// WithNetConfig replaces the whole HTTP-tier configuration for
// NewNetServer.
//
// Configuration precedence, for every whole-config/per-field option pair
// on this facade (WithServerConfig vs the round knobs, WithNetConfig vs
// WithListenAddr/WithRateLimit, WithBinaryConfig vs WithBinaryAddr):
// options apply strictly in argument order over the defaults, and later
// options win. A whole-config option replaces its entire struct — field
// options given before it are lost; field options given after it apply on
// top. Transport selection (WithTransport, WithBinaryAddr's implied
// enable) is tracked separately and survives whole-config replacement.
func WithNetConfig(cfg NetServerConfig) ServerOption {
	return func(c *serveConfig) { c.net = cfg }
}

// NewNetServer builds a ShardedServer for the workload, wires its round
// loops into the live feed, and starts the selected network transports
// listening:
//
//	ns, err := sharedwd.NewNetServer(w,
//	    sharedwd.WithListenAddr(":8080"),
//	    sharedwd.WithBinaryAddr(":8081"),
//	    sharedwd.WithRateLimit(1000, 2000),
//	    sharedwd.WithShards(4))
//	defer ns.Shutdown(context.Background())
//	// POST http://host:8080/v1/query  {"query": "hiking boots"}
//	// or sharedwd.NewBinaryClient(ns.BinaryAddr())
//
// All NewShardedServer options apply; WithTransport and WithBinaryAddr
// choose the edges (HTTP only without either). Every edge serves the same
// fleet — identical results, one error taxonomy, shared budget ledger.
// The tier is serving when NewNetServer returns; Addr and BinaryAddr
// report the bound addresses. Shutdown drains gracefully — listeners stop
// accepting, every admitted request is answered, live subscribers get a
// close frame, then the fleet drains. See WithNetConfig for option
// precedence.
func NewNetServer(w *Workload, opts ...ServerOption) (*NetServer, error) {
	cfg := applyServerOptions(opts)
	if cfg.transports != nil && !cfg.serves(TransportHTTP) && !cfg.serves(TransportBinary) {
		return nil, fmt.Errorf("sharedwd: NewNetServer with no transports")
	}
	// The hub must exist before the workers start: each round loop's
	// summary hook is fixed at worker construction.
	hub := netserve.NewHubFor(cfg.net)
	cfg.srv.OnRound = hub.RoundHook()
	scfg := shard.DefaultConfig()
	scfg.Worker = cfg.srv
	if cfg.shards > 0 {
		scfg.Shards = cfg.shards
	}
	scfg.Router = cfg.router
	scfg.TotalWorkers = cfg.totalWorkers
	backend, err := shard.New(w, scfg)
	if err != nil {
		return nil, err
	}
	ns := &NetServer{backend: backend, hub: hub}
	if cfg.serves(TransportHTTP) {
		ns.http = netserve.New(backend, hub, cfg.net)
		if err := ns.http.Start(); err != nil {
			hub.Close()
			backend.Close()
			return nil, fmt.Errorf("sharedwd: net server listen: %w", err)
		}
	}
	if cfg.serves(TransportBinary) {
		ns.binary = binproto.New(backend, cfg.bin)
		if err := ns.binary.Start(); err != nil {
			if ns.http != nil {
				ns.http.Close() // closes hub and backend
			} else {
				hub.Close()
				backend.Close()
			}
			return nil, fmt.Errorf("sharedwd: binary server listen: %w", err)
		}
	}
	return ns, nil
}

// TuneRoundInterval picks the longest round length whose simulated median
// query latency stays within the paper's 2.2 s user-tolerance threshold,
// by replaying the §I batching model (internal/batching) against the
// workload's shared plan at the given per-phrase Poisson arrival rates.
func TuneRoundInterval(w *Workload, arrivalsPerSecond []float64, wdSecondsPerOp float64, candidates []time.Duration) (time.Duration, error) {
	return server.TuneRoundInterval(w, arrivalsPerSecond, wdSecondsPerOp, candidates)
}

// NewMatcher indexes bid phrases for two-stage query matching.
func NewMatcher(phrases []string) *Matcher { return workload.NewMatcher(phrases) }

// RecordTrace captures rounds of the workload into a replayable trace.
func RecordTrace(w *Workload, rounds int, walkScale float64) *Trace {
	return workload.Record(w, rounds, walkScale)
}

// NewQueryStream builds a raw-query generator over the workload's phrases.
// It returns an error unless junkRate is in [0, 1).
func NewQueryStream(w *Workload, junkRate float64, seed int64) (*QueryStream, error) {
	if junkRate < 0 || junkRate >= 1 {
		return nil, fmt.Errorf("sharedwd: junk rate %v outside [0,1)", junkRate)
	}
	return workload.NewQueryStream(w, junkRate, seed), nil
}

// RandomCoinFlipInstance reproduces the Figure-4 instance construction.
func RandomCoinFlipInstance(rng *rand.Rand, numVars, numQueries int, rate float64) *AggInstance {
	return plan.RandomCoinFlipInstance(rng, numVars, numQueries, rate)
}

// RunGamingScenario reproduces the Section-IV gaming demonstration.
func RunGamingScenario(seed int64, rounds int, policy BudgetPolicy) (core.GamingResult, error) {
	return core.RunGamingScenario(seed, rounds, policy)
}

// RunGamingExperiment averages the gaming scenario over reps seeds.
func RunGamingExperiment(seed int64, rounds, reps int, policy BudgetPolicy) (core.GamingResult, error) {
	return core.RunGamingExperiment(seed, rounds, reps, policy)
}
