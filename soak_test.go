package sharedwd

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sharedwd/internal/budget"
	"sharedwd/internal/core"
	"sharedwd/internal/pricing"
	"sharedwd/internal/server"
	"sharedwd/internal/workload"
)

// TestSoakEngine runs a long randomized simulation across engine
// configurations — random occurrence patterns, bid walks, budget edits on
// the fly, mixed pricing rules, reserve prices — asserting the global
// invariants after every round:
//
//   - per-advertiser spend never exceeds the (current) budget;
//   - revenue equals total spend;
//   - every winner's price is within [reserve, bid];
//   - winners belong to their phrase's interest set, at most one slot each.
//
// Skipped under -short; the full run is the failure-injection gauntlet.
func TestSoakEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(4242))
	for cfgIdx := 0; cfgIdx < 6; cfgIdx++ {
		wcfg := workload.DefaultConfig()
		wcfg.NumAdvertisers = 80 + rng.Intn(120)
		wcfg.NumPhrases = 6 + rng.Intn(10)
		wcfg.NumTopics = 2 + rng.Intn(4)
		wcfg.Slots = 1 + rng.Intn(5)
		wcfg.Seed = rng.Int63()
		wcfg.MinBudget, wcfg.MaxBudget = 2, 30 // tight: budget edges matter
		w := workload.Generate(wcfg)

		ecfg := core.DefaultConfig()
		ecfg.Policy = core.BudgetPolicy(rng.Intn(2))
		ecfg.Sharing = core.SharingMode(rng.Intn(2))
		ecfg.Pricing = []pricing.Rule{pricing.FirstPrice, pricing.GSP, pricing.VCG}[rng.Intn(3)]
		ecfg.Reserve = []float64{0, 0.5}[rng.Intn(2)]
		ecfg.ClickHazard = 0.05 + rng.Float64()*0.9
		ecfg.ClickHorizon = 5 + rng.Intn(40)
		if rng.Intn(3) == 0 {
			ecfg.Workers = 2 + rng.Intn(3)
		}
		eng, err := core.New(w, ecfg)
		if err != nil {
			t.Fatal(err)
		}

		for round := 0; round < 120; round++ {
			var occ []bool
			if rng.Intn(4) > 0 {
				occ = make([]bool, len(w.Interests))
				for q := range occ {
					occ[q] = rng.Intn(3) > 0
				}
			}
			rep := eng.Step(occ)
			for q, slots := range rep.Auctions {
				seen := map[int]bool{}
				for _, s := range slots {
					if seen[s.Advertiser] {
						t.Fatalf("cfg %d round %d: advertiser %d won two slots", cfgIdx, round, s.Advertiser)
					}
					seen[s.Advertiser] = true
					if !w.Interests[q].Contains(s.Advertiser) {
						t.Fatalf("cfg %d: winner %d not interested in phrase %d", cfgIdx, s.Advertiser, q)
					}
					if s.PricePaid < ecfg.Reserve-1e-9 {
						t.Fatalf("cfg %d: price %v below reserve %v", cfgIdx, s.PricePaid, ecfg.Reserve)
					}
					if s.PricePaid > w.Advertisers[s.Advertiser].Bid+1e-9 {
						// Throttled bids can sit below the stated bid, and
						// prices are bounded by the round bid, so the
						// stated bid is still an upper bound.
						t.Fatalf("cfg %d: price %v above stated bid", cfgIdx, s.PricePaid)
					}
				}
			}
			// Mid-flight perturbations: bids drift; occasionally a budget
			// is raised (never below spend — daily budgets don't shrink).
			w.PerturbBids(0.1)
			if rng.Intn(10) == 0 {
				i := rng.Intn(len(w.Advertisers))
				w.Advertisers[i].Budget += rng.Float64() * 5
			}
			checkAccounting(t, eng, w, cfgIdx, round)
		}
		eng.Drain()
		checkAccounting(t, eng, w, cfgIdx, -1)
	}
}

func checkAccounting(t *testing.T, eng *core.Engine, w *workload.Workload, cfg, round int) {
	t.Helper()
	total := 0.0
	for i := range w.Advertisers {
		spent := eng.Spent(i)
		if spent > w.Advertisers[i].Budget+1e-6 {
			t.Fatalf("cfg %d round %d: advertiser %d spent %v of budget %v",
				cfg, round, i, spent, w.Advertisers[i].Budget)
		}
		total += spent
	}
	if math.Abs(total-eng.Stats().Revenue) > 1e-6 {
		t.Fatalf("cfg %d round %d: revenue %v != Σspent %v", cfg, round, eng.Stats().Revenue, total)
	}
}

// TestSoakSortEngine is the per-phrase-quality counterpart.
func TestSoakSortEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(777))
	for cfgIdx := 0; cfgIdx < 4; cfgIdx++ {
		wcfg := workload.DefaultConfig()
		wcfg.NumAdvertisers = 60 + rng.Intn(100)
		wcfg.NumPhrases = 6 + rng.Intn(8)
		wcfg.Slots = 1 + rng.Intn(4)
		wcfg.Seed = rng.Int63()
		wcfg.PerPhraseQuality = true
		wcfg.MinBudget, wcfg.MaxBudget = 2, 25
		w := workload.Generate(wcfg)
		ecfg := core.DefaultConfig()
		ecfg.Pricing = []pricing.Rule{pricing.FirstPrice, pricing.GSP, pricing.VCG}[rng.Intn(3)]
		eng, err := core.NewSortEngine(w, ecfg)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 100; round++ {
			rep := eng.Step(nil)
			for q, slots := range rep.Auctions {
				for _, s := range slots {
					if !w.Interests[q].Contains(s.Advertiser) {
						t.Fatalf("cfg %d: winner %d not interested in phrase %d", cfgIdx, s.Advertiser, q)
					}
				}
			}
			w.PerturbBids(0.1)
		}
		for i := range w.Advertisers {
			if eng.Spent(i) > w.Advertisers[i].Budget+1e-6 {
				t.Fatalf("cfg %d: advertiser %d over budget", cfgIdx, i)
			}
		}
	}
}

// TestSoakServer hammers the round server from many goroutines with the full
// traffic mix — matched phrases, junk queries, and aggressive deadlines —
// then shuts it down and verifies no goroutine leaks: everything the server
// started (round loop, engine worker pool) must be gone after Close.
func TestSoakServer(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	before := runtime.NumGoroutine()

	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 120
	wcfg.NumPhrases = 12
	wcfg.Seed = 31
	w := workload.Generate(wcfg)
	cfg := server.DefaultConfig()
	cfg.Engine.Workers = 2 // exercise the engine pool's shutdown too
	cfg.RoundInterval = time.Millisecond
	cfg.MaxBatch = 64
	cfg.QueueDepth = 512
	cfg.BidWalkScale = 0.05
	s, err := server.New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < 300; i++ {
				query := w.PhraseNames[rng.Intn(len(w.PhraseNames))]
				switch rng.Intn(10) {
				case 0: // junk that matches no phrase
					if _, err := s.Submit(context.Background(), "zzz no such phrase"); !errors.Is(err, ErrNoAuction) {
						t.Errorf("junk query: err = %v, want ErrNoAuction", err)
					}
				case 1: // deadline likely to fire mid-round
					ctx, cancel := context.WithTimeout(context.Background(), 300*time.Microsecond)
					s.Submit(ctx, query) // success and ctx error both legal
					cancel()
				default:
					if _, err := s.Submit(context.Background(), query); err != nil && !errors.Is(err, ErrOverloaded) {
						t.Errorf("submit: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	m := s.Metrics()
	if m.Answered == 0 {
		t.Fatal("soak answered no queries")
	}
	if m.Unmatched == 0 {
		t.Fatal("soak exercised no unmatched queries")
	}
	s.Close()
	if _, err := s.Submit(context.Background(), w.PhraseNames[0]); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("submit after close: err = %v, want ErrServerClosed", err)
	}

	// Goroutine-leak check: after Close returns, the round loop and the
	// engine's worker pool must have exited. Poll briefly — runtime
	// bookkeeping for exiting goroutines is asynchronous.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak: %d before, %d after close\n%s", before, after, buf[:n])
	}
}

// TestSoakParallelClose is the shutdown gauntlet for wide worker pools: a
// sharded server whose engines split a TotalWorkers core budget is closed
// from several goroutines at once while submitters are still hammering it —
// so Close races in-flight rounds whose Steps are running on the engine
// pools — and afterwards nothing the server or any engine pool started may
// survive. It also pins engine-level Close idempotence directly.
func TestSoakParallelClose(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}

	// Engine-level: repeated Close on a pooled engine is a no-op, and the
	// engine still reports consistent accounting afterwards.
	{
		wcfg := workload.DefaultConfig()
		wcfg.NumAdvertisers = 80
		wcfg.NumPhrases = 10
		wcfg.Seed = 91
		w := workload.Generate(wcfg)
		ecfg := core.DefaultConfig()
		ecfg.Workers = 4
		eng, err := core.New(w, ecfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			eng.Step(nil)
		}
		eng.Close()
		eng.Close()
	}

	before := runtime.NumGoroutine()

	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 150
	wcfg.NumPhrases = 16
	wcfg.Seed = 92
	w := workload.Generate(wcfg)
	s, err := NewShardedServer(w,
		WithShards(2),
		WithTotalWorkers(6), // 3 pool workers per shard engine
		WithRoundInterval(time.Millisecond),
		WithMaxBatch(32),
		WithQueueDepth(256))
	if err != nil {
		t.Fatal(err)
	}

	// Submitters run until the server refuses them; Close fires mid-flight.
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(9000 + g)))
			for i := 0; ; i++ {
				query := w.PhraseNames[rng.Intn(len(w.PhraseNames))]
				_, err := s.Submit(context.Background(), query)
				if errors.Is(err, ErrServerClosed) {
					return
				}
				if err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("submitter %d: %v", g, err)
					return
				}
			}
		}(g)
	}

	time.Sleep(20 * time.Millisecond) // let several rounds close under load
	var closers sync.WaitGroup
	for c := 0; c < 3; c++ {
		closers.Add(1)
		go func() {
			defer closers.Done()
			s.Close() // concurrent + repeated Close must all return
		}()
	}
	closers.Wait()
	s.Close()
	wg.Wait()

	if m := s.Metrics(); m.Answered == 0 {
		t.Fatal("parallel-close soak answered no queries")
	}

	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak: %d before, %d after close\n%s", before, after, buf[:n])
	}
}

// TestSoakShardedCloseFullQueues is the shutdown regression for the sharded
// server: Close while every shard's round loop is stalled mid-round and
// every admission queue is full must resolve all blocked submitters and
// leak no goroutines. The BeforeStep hook makes the scenario deterministic:
// each shard's first query enters a round and parks the loop; the next
// QueueDepth queries fill that shard's queue behind it; one more sheds.
// Only then is Close raced against the release of the stalled rounds.
func TestSoakShardedCloseFullQueues(t *testing.T) {
	before := runtime.NumGoroutine()

	const shards, queueDepth = 2, 3
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 60
	wcfg.NumPhrases = 10
	wcfg.Seed = 57
	w := workload.Generate(wcfg)

	var stalled atomic.Int32
	release := make(chan struct{})
	scfg := DefaultServerConfig()
	scfg.RoundInterval = time.Hour // rounds close on MaxBatch only
	scfg.MaxBatch = 1
	scfg.QueueDepth = queueDepth
	scfg.BeforeStep = func() {
		stalled.Add(1)
		<-release
	}
	s, err := NewShardedServer(w, WithServerConfig(scfg), WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}

	// One phrase per shard to address its queue directly.
	phraseOn := make([]int, shards)
	for sh := range phraseOn {
		phraseOn[sh] = -1
	}
	for q, sh := range s.Assignment() {
		if phraseOn[sh] == -1 {
			phraseOn[sh] = q
		}
	}

	ctx := context.Background()
	var inflight sync.WaitGroup
	submit := func(sh int) {
		inflight.Add(1)
		go func() {
			defer inflight.Done()
			// Under shutdown either outcome is legal: answered by a drain
			// round or refused with ErrClosed. Returning is the point.
			if _, err := s.Submit(ctx, w.PhraseNames[phraseOn[sh]]); err != nil && !errors.Is(err, ErrServerClosed) {
				t.Errorf("shard %d submitter: %v", sh, err)
			}
		}()
	}

	// Step 1: park every shard's round loop inside a one-query round.
	for sh := 0; sh < shards; sh++ {
		submit(sh)
	}
	for stalled.Load() < shards {
		time.Sleep(time.Millisecond)
	}

	// Step 2: fill every stalled shard's admission queue to the brim.
	for sh := 0; sh < shards; sh++ {
		for i := 0; i < queueDepth; i++ {
			submit(sh)
		}
	}
	for s.Metrics().QueueDepth < shards*queueDepth {
		time.Sleep(time.Millisecond)
	}

	// Step 3: the queues are provably full — one more query per shard must
	// shed deterministically, with routing context on the error.
	for sh := 0; sh < shards; sh++ {
		_, err := s.Submit(ctx, w.PhraseNames[phraseOn[sh]])
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("shard %d: full-queue submit = %v, want ErrOverloaded", sh, err)
		}
		var qe *QueryError
		if !errors.As(err, &qe) || qe.Shard != sh {
			t.Fatalf("shard %d: shed error lacks shard context: %v", sh, err)
		}
	}

	// Step 4: race Close against the stalled rounds, then release them.
	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	time.Sleep(5 * time.Millisecond) // let Close reach the stalled workers
	close(release)

	done := make(chan struct{})
	go func() {
		inflight.Wait()
		close(done)
	}()
	for _, ch := range []struct {
		name string
		c    chan struct{}
	}{{"Close", closed}, {"submitters", done}} {
		select {
		case <-ch.c:
		case <-time.After(10 * time.Second):
			t.Fatalf("%s did not finish: shutdown deadlocked with full queues", ch.name)
		}
	}

	// Every admitted query was resolved by a drain round, none abandoned.
	m := s.Metrics()
	if want := int64(shards * (1 + queueDepth)); m.Answered != want {
		t.Fatalf("Answered = %d, want %d (drain rounds must resolve the full queues)", m.Answered, want)
	}
	if m.Shed != int64(shards) {
		t.Fatalf("Shed = %d, want %d", m.Shed, shards)
	}

	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak: %d before, %d after close\n%s", before, after, buf[:n])
	}
}

// soakDetOutcome is a pure click-fate hash (advertiser, ctr, round), so
// the pacing soak's three phases see reproducible click behavior for the
// same displays without sharing RNG state.
func soakDetOutcome(horizon int) workload.OutcomeFunc {
	return func(adv int, price, ctr float64, round int) (bool, int) {
		x := uint64(adv)*0x9E3779B97F4A7C15 ^ math.Float64bits(ctr) ^ uint64(round)*0xBF58476D1CE4E5B9
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		clicked := float64(x>>40)/float64(1<<24) < ctr
		delay := 1 + int((x&0xFFFF)%uint64(horizon-1))
		return clicked, delay
	}
}

// TestSoakPacingDay is the day-in-the-life pacing soak (EXPERIMENTS.md §
// "Budget pacing"): three phases over one fixed traffic day.
//
//  1. Calibrate: unconstrained budgets measure each advertiser's natural
//     spend. Budgets are then set to 45% of natural for the hot
//     advertisers — demand exceeds budget ~2.2×, the regime pacing is for.
//  2. Unpaced baseline: budgets exhaust front-loaded — most hot
//     advertisers are spent out well before 80% of the day.
//  3. Paced: with the controller on, no advertiser exhausts before 80% of
//     the day, every hot advertiser still spends ≥ 90% of its budget by
//     the end, and the ledger keeps every advertiser within budget.
//
// Skipped under -short.
func TestSoakPacingDay(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		day        = 1500
		budgetFrac = 0.45
		hotSpend   = 20.0 // natural spend above which an advertiser is "hot"
	)
	wcfg := workload.DefaultConfig()
	wcfg.NumAdvertisers = 120
	wcfg.NumPhrases = 16
	wcfg.NumTopics = 4
	wcfg.Seed = 77
	wcfg.MinBudget, wcfg.MaxBudget = 1e9, 1e9

	// One fixed traffic day shared by all phases.
	occRng := rand.New(rand.NewSource(101))
	wRates := workload.Generate(wcfg)
	days := make([][]bool, day)
	for r := range days {
		days[r] = make([]bool, wcfg.NumPhrases)
		for q := range days[r] {
			days[r][q] = occRng.Float64() < wRates.Rates[q]
		}
	}

	ecfg := core.DefaultConfig()
	ecfg.Policy = core.Naive
	ecfg.ClickOutcome = soakDetOutcome(ecfg.ClickHorizon)

	runDay := func(budgets []float64, pcfg *budget.PacerConfig) (*budget.Ledger, *budget.Pacer, []int) {
		w := workload.Generate(wcfg)
		if budgets != nil {
			for i := range w.Advertisers {
				w.Advertisers[i].Budget = budgets[i]
			}
		} else {
			budgets = make([]float64, len(w.Advertisers))
			for i, a := range w.Advertisers {
				budgets[i] = a.Budget
			}
		}
		ledger := budget.NewLedger(budgets)
		cfg := ecfg
		cfg.Ledger = ledger
		var pacer *budget.Pacer
		if pcfg != nil {
			var err error
			pacer, err = budget.NewPacer(ledger, budgets, *pcfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Pacer = pacer
		}
		eng, err := core.New(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		exhaustedAt := make([]int, len(budgets))
		for i := range exhaustedAt {
			exhaustedAt[i] = -1
		}
		for r := 0; r < day; r++ {
			eng.Step(days[r])
			for i := range budgets {
				// "Exhausted" = spent ≥ 95% of budget: clicks that would
				// overflow the remainder are forgiven, so Remaining never
				// reaches exactly zero.
				if exhaustedAt[i] < 0 && ledger.Spent(i) >= 0.95*budgets[i] {
					exhaustedAt[i] = r
				}
			}
		}
		eng.Drain()
		return ledger, pacer, exhaustedAt
	}

	// Phase 1: natural (unconstrained) spend.
	calib, _, _ := runDay(nil, nil)
	budgets := make([]float64, wcfg.NumAdvertisers)
	var hot []int
	for i := range budgets {
		natural := calib.Spent(i)
		if natural >= hotSpend {
			budgets[i] = budgetFrac * natural
			hot = append(hot, i)
		} else {
			budgets[i] = 1e6 // cold: budget never binds, stays out of the way
		}
	}
	if len(hot) < 12 {
		t.Fatalf("only %d hot advertisers — calibration degenerate", len(hot))
	}

	// Phase 2: unpaced. Demand 2.2× budget burns front-loaded.
	unpacedLedger, _, unpacedExhaust := runDay(budgets, nil)
	early := 0
	for _, i := range hot {
		if r := unpacedExhaust[i]; r >= 0 && r < int(0.8*day) {
			early++
		}
	}
	if early < len(hot)/2 {
		t.Fatalf("unpaced baseline: only %d/%d hot advertisers exhausted before 80%% of the day — not front-loaded, calibration is off", early, len(hot))
	}

	// Phase 3: paced over the same day.
	pcfg := budget.DefaultPacerConfig()
	pcfg.Horizon = day
	// The default 2% bid floor is too high for this workload's strongest
	// advertisers — they keep winning (and spending) even at MinFactor, so
	// give the controller more actuator range for the soak.
	pcfg.MinFactor = 1e-3
	pacedLedger, pacer, pacedExhaust := runDay(budgets, &pcfg)
	for _, i := range hot {
		if r := pacedExhaust[i]; r >= 0 && r < int(0.8*day) {
			t.Errorf("paced: advertiser %d exhausted at round %d, before 80%% of the %d-round day", i, r, day)
		}
		spent := pacedLedger.Spent(i)
		if spent < 0.9*budgets[i] {
			t.Errorf("paced: advertiser %d spent %.3f of budget %.3f (< 90%%)", i, spent, budgets[i])
		}
		if spent > budgets[i]+1e-9 {
			t.Errorf("paced: advertiser %d over budget: %v > %v", i, spent, budgets[i])
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	m := pacer.Metrics()
	if m.Throttled == 0 || m.Rounds == 0 {
		t.Fatalf("pacing never engaged: %+v", m)
	}
	// Sanity: pacing should not cost much revenue versus the unpaced run —
	// the same budgets get spent, just spread across the day.
	if up, p := unpacedLedger.TotalSpent(), pacedLedger.TotalSpent(); p < 0.8*up {
		t.Fatalf("paced revenue %v collapsed versus unpaced %v", p, up)
	}
}
