// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark numbers can be committed and diffed
// across PRs (see `make bench-json`).
//
// Each benchmark line becomes one record with the standard ns/op, B/op and
// allocs/op fields plus any custom b.ReportMetric units (e.g.
// "aggOps/auction"). Non-benchmark lines (goos/goarch/cpu headers, PASS/ok)
// are captured as environment metadata or ignored.
//
// Benchmarks whose name carries a `workers=N` path segment (N > 1) get a
// derived `speedup` metric when the same run contains their `workers=1`
// sibling: speedup = ns/op(workers=1) / ns/op(workers=N). This turns the
// parallel-execution sweeps (BenchmarkParallelScaling,
// BenchmarkExecutorRound's compiled/workers=N rows) into a single
// regressible scalar — on a single-core runner it reads below 1 (pure
// scheduling overhead), on real cores above 1.
//
// With -compare old.json, the fresh run on stdin is instead diffed against
// the committed baseline: every benchmark present in both gets a per-name
// ns/op delta line, and the command exits nonzero if any benchmark regressed
// by more than -threshold (default 0.20 = 20%); recorded `speedup` and
// `queries/sec` metrics are likewise gated, failing when the fresh value
// falls more than the threshold below the baseline's. allocs/op is gated in
// absolute terms — allocation counts are near-deterministic, so a fresh
// count at least one whole allocation AND threshold-fraction above the
// baseline fails (a 0→1 step on a zero baseline also fails). Benchmarks
// present on only one side are reported but never fail the comparison, so
// adding or renaming benchmarks does not break the CI gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  *float64           `json:"bytes_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type document struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []result `json:"results"`
}

func main() {
	comparePath := flag.String("compare", "", "baseline JSON to diff the fresh run against (no JSON output in this mode)")
	threshold := flag.Float64("threshold", 0.20, "fractional ns/op regression that fails -compare (0.20 = 20%)")
	flag.Parse()

	doc, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	deriveSpeedups(&doc)

	if *comparePath != "" {
		old, err := loadDoc(*comparePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		// Baselines recorded before the speedup metric existed still gate:
		// derive it from their own ns/op records.
		deriveSpeedups(&old)
		if !compare(os.Stdout, old, doc, *threshold) {
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench reads `go test -bench` output into a document.
func parseBench(in io.Reader) (document, error) {
	doc := document{Results: []result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	return doc, sc.Err()
}

// loadDoc reads a previously committed benchjson document.
func loadDoc(path string) (document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return document{}, err
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return document{}, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// compare prints a per-benchmark ns/op delta report of fresh against old and
// reports whether the run is acceptable: no benchmark present in both
// documents may regress by more than threshold. Only intersecting names are
// judged; one-sided benchmarks are listed as informational.
func compare(w io.Writer, old, fresh document, threshold float64) bool {
	oldBy := make(map[string]result, len(old.Results))
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	names := make([]string, 0, len(fresh.Results))
	freshBy := make(map[string]result, len(fresh.Results))
	for _, r := range fresh.Results {
		names = append(names, r.Name)
		freshBy[r.Name] = r
	}
	sort.Strings(names)

	ok := true
	for _, name := range names {
		nw := freshBy[name]
		od, found := oldBy[name]
		if !found {
			fmt.Fprintf(w, "  new   %-60s %12.0f ns/op (no baseline)\n", name, nw.NsPerOp)
			continue
		}
		if od.NsPerOp <= 0 {
			continue
		}
		delta := nw.NsPerOp/od.NsPerOp - 1
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSION"
			ok = false
		}
		fmt.Fprintf(w, "  %-5s %-60s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
			verdict, name, od.NsPerOp, nw.NsPerOp, 100*delta)
		if oldS, freshS := od.Metrics["speedup"], nw.Metrics["speedup"]; oldS > 0 && freshS > 0 {
			verdict := "ok"
			if 1-freshS/oldS > threshold {
				verdict = "REGRESSION"
				ok = false
			}
			fmt.Fprintf(w, "  %-5s %-60s %11.2fx -> %11.2fx speedup (%+.1f%%)\n",
				verdict, name, oldS, freshS, 100*(freshS/oldS-1))
		}
		// Throughput is a bigger-is-better metric: gate drops, not rises.
		if oldQ, freshQ := od.Metrics["queries/sec"], nw.Metrics["queries/sec"]; oldQ > 0 && freshQ > 0 {
			verdict := "ok"
			if 1-freshQ/oldQ > threshold {
				verdict = "REGRESSION"
				ok = false
			}
			fmt.Fprintf(w, "  %-5s %-60s %12.0f -> %12.0f queries/sec (%+.1f%%)\n",
				verdict, name, oldQ, freshQ, 100*(freshQ/oldQ-1))
		}
		// Allocation counts are near-deterministic, so gate them absolutely:
		// at least one whole extra allocation AND beyond the fractional
		// threshold (so a 3→4 step fails at 20% but a 100→101 step passes).
		if od.AllocsPerOp != nil && nw.AllocsPerOp != nil {
			oldA, freshA := *od.AllocsPerOp, *nw.AllocsPerOp
			if freshA != oldA {
				verdict := "ok"
				if freshA >= oldA+1 && freshA > oldA*(1+threshold) {
					verdict = "REGRESSION"
					ok = false
				}
				fmt.Fprintf(w, "  %-5s %-60s %12.0f -> %12.0f allocs/op\n",
					verdict, name, oldA, freshA)
			}
		}
	}
	for _, r := range old.Results {
		if _, found := freshBy[r.Name]; !found {
			fmt.Fprintf(w, "  gone  %-60s %12.0f ns/op (not in fresh run)\n", r.Name, r.NsPerOp)
		}
	}
	if !ok {
		fmt.Fprintf(w, "benchjson: regression beyond %.0f%% threshold\n", 100*threshold)
	}
	return ok
}

// deriveSpeedups attaches a derived "speedup" metric to every result whose
// name has a workers=N path segment with N > 1 and whose workers=1 sibling
// (same name with that segment rewritten) appears in the same document:
// speedup = ns/op of the sibling divided by ns/op of the result. Results
// without a sibling, or already carrying an explicit speedup metric, are
// left untouched.
func deriveSpeedups(doc *document) {
	nsBy := make(map[string]float64, len(doc.Results))
	for _, r := range doc.Results {
		nsBy[r.Name] = r.NsPerOp
	}
	for i := range doc.Results {
		r := &doc.Results[i]
		if r.Metrics["speedup"] > 0 {
			continue
		}
		base, ok := workersBaseline(r.Name)
		if !ok {
			continue
		}
		baseNs, found := nsBy[base]
		if !found || baseNs <= 0 || r.NsPerOp <= 0 {
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics["speedup"] = baseNs / r.NsPerOp
	}
}

// workersBaseline rewrites every workers=N (N > 1) path segment of a
// benchmark name to workers=1, reporting false if the name has none.
func workersBaseline(name string) (string, bool) {
	segs := strings.Split(name, "/")
	changed := false
	for i, seg := range segs {
		n, isWorkers := strings.CutPrefix(seg, "workers=")
		if !isWorkers {
			continue
		}
		if v, err := strconv.Atoi(n); err == nil && v > 1 {
			segs[i] = "workers=1"
			changed = true
		}
	}
	if !changed {
		return "", false
	}
	return strings.Join(segs, "/"), true
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   1234   5678 ns/op   9 B/op   0 allocs/op   1.5 unit
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			v := val
			r.BytesPerOp = &v
		case "allocs/op":
			v := val
			r.AllocsPerOp = &v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = val
		}
	}
	return r, true
}
