// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark numbers can be committed and diffed
// across PRs (see `make bench-json`).
//
// Each benchmark line becomes one record with the standard ns/op, B/op and
// allocs/op fields plus any custom b.ReportMetric units (e.g.
// "aggOps/auction"). Non-benchmark lines (goos/goarch/cpu headers, PASS/ok)
// are captured as environment metadata or ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  *float64           `json:"bytes_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type document struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []result `json:"results"`
}

func main() {
	doc := document{Results: []result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   1234   5678 ns/op   9 B/op   0 allocs/op   1.5 unit
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			v := val
			r.BytesPerOp = &v
		case "allocs/op":
			v := val
			r.AllocsPerOp = &v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = val
		}
	}
	return r, true
}
