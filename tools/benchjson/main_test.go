package main

import (
	"strings"
	"testing"
)

func TestWorkersBaseline(t *testing.T) {
	cases := []struct {
		name, want string
		ok         bool
	}{
		{"BenchmarkParallelScaling/shards=1/workers=8", "BenchmarkParallelScaling/shards=1/workers=1", true},
		{"BenchmarkExecutorRound/compiled/workers=4", "BenchmarkExecutorRound/compiled/workers=1", true},
		{"BenchmarkParallelScaling/shards=1/workers=1", "", false},
		{"BenchmarkExecutorRound/compiled", "", false},
		{"BenchmarkConcurrentRounds/workers=notanint", "", false},
	}
	for _, tc := range cases {
		got, ok := workersBaseline(tc.name)
		if got != tc.want || ok != tc.ok {
			t.Errorf("workersBaseline(%q) = %q, %v; want %q, %v", tc.name, got, ok, tc.want, tc.ok)
		}
	}
}

func TestDeriveSpeedups(t *testing.T) {
	doc := document{Results: []result{
		{Name: "BenchmarkParallelScaling/shards=1/workers=1", NsPerOp: 800},
		{Name: "BenchmarkParallelScaling/shards=1/workers=8", NsPerOp: 200},
		{Name: "BenchmarkParallelScaling/shards=4/workers=2", NsPerOp: 400}, // no shards=4/workers=1 sibling
		{Name: "BenchmarkParallelScaling/shards=8/workers=1", NsPerOp: 900},
	}}
	deriveSpeedups(&doc)
	if got := doc.Results[1].Metrics["speedup"]; got != 4 {
		t.Errorf("workers=8 speedup = %v, want 4", got)
	}
	if m := doc.Results[2].Metrics; m != nil {
		t.Errorf("sibling-less result grew metrics %v", m)
	}
	if m := doc.Results[0].Metrics; m != nil {
		t.Errorf("baseline result grew metrics %v", m)
	}
	// An explicit speedup (e.g. loaded from a committed baseline) wins over
	// re-derivation.
	doc.Results[1].Metrics["speedup"] = 3
	deriveSpeedups(&doc)
	if got := doc.Results[1].Metrics["speedup"]; got != 3 {
		t.Errorf("explicit speedup overwritten to %v", got)
	}
}

func TestCompareGatesSpeedupDrop(t *testing.T) {
	old := document{Results: []result{
		{Name: "B/workers=1", NsPerOp: 800},
		{Name: "B/workers=8", NsPerOp: 200},
	}}
	// The sequential baseline got faster while the parallel variant stood
	// still: every ns/op delta is within the gate, but the speedup collapsed
	// from 4x to 2.5x — exactly the regression shape the metric exists for.
	fresh := document{Results: []result{
		{Name: "B/workers=1", NsPerOp: 500},
		{Name: "B/workers=8", NsPerOp: 200},
	}}
	deriveSpeedups(&old)
	deriveSpeedups(&fresh)
	var buf strings.Builder
	if compare(&buf, old, fresh, 0.20) {
		t.Fatalf("compare accepted a >20%% speedup drop:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatalf("no speedup line in report:\n%s", buf.String())
	}
}

func TestCompareGatesThroughputDrop(t *testing.T) {
	old := document{Results: []result{
		{Name: "BenchmarkBinaryThroughput", NsPerOp: 5000, Metrics: map[string]float64{"queries/sec": 200000}},
	}}
	// ns/op held steady (the benchmark loop is dominated by setup) but the
	// reported end-to-end throughput collapsed — the qps gate must catch it.
	fresh := document{Results: []result{
		{Name: "BenchmarkBinaryThroughput", NsPerOp: 5000, Metrics: map[string]float64{"queries/sec": 120000}},
	}}
	var buf strings.Builder
	if compare(&buf, old, fresh, 0.20) {
		t.Fatalf("compare accepted a 40%% queries/sec drop:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "queries/sec") {
		t.Fatalf("no queries/sec line in report:\n%s", buf.String())
	}
	// A within-threshold wobble passes.
	fresh.Results[0].Metrics["queries/sec"] = 170000
	buf.Reset()
	if !compare(&buf, old, fresh, 0.20) {
		t.Fatalf("compare rejected a 15%% queries/sec wobble:\n%s", buf.String())
	}
}

func TestCompareGatesAllocRegression(t *testing.T) {
	f := func(v float64) *float64 { return &v }
	old := document{Results: []result{
		{Name: "BenchmarkServerThroughput", NsPerOp: 5000, AllocsPerOp: f(1)},
		{Name: "BenchmarkChatty", NsPerOp: 5000, AllocsPerOp: f(100)},
		{Name: "BenchmarkZero", NsPerOp: 5000, AllocsPerOp: f(0)},
	}}
	// 1 → 3 allocs on a tight benchmark fails; 100 → 101 amortization noise
	// passes; 0 → 1 on a zero-alloc benchmark fails.
	fresh := document{Results: []result{
		{Name: "BenchmarkServerThroughput", NsPerOp: 5000, AllocsPerOp: f(3)},
		{Name: "BenchmarkChatty", NsPerOp: 5000, AllocsPerOp: f(101)},
		{Name: "BenchmarkZero", NsPerOp: 5000, AllocsPerOp: f(0)},
	}}
	var buf strings.Builder
	if compare(&buf, old, fresh, 0.20) {
		t.Fatalf("compare accepted a 1->3 allocs/op regression:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "allocs/op") {
		t.Fatalf("no allocs/op line in report:\n%s", buf.String())
	}
	fresh.Results[0].AllocsPerOp = f(1)
	buf.Reset()
	if !compare(&buf, old, fresh, 0.20) {
		t.Fatalf("compare rejected amortization noise (100 -> 101):\n%s", buf.String())
	}
	fresh.Results[2].AllocsPerOp = f(1)
	buf.Reset()
	if compare(&buf, old, fresh, 0.20) {
		t.Fatalf("compare accepted a 0 -> 1 allocs/op step:\n%s", buf.String())
	}
}
